"""Bus-level network simulators: CAN, FlexRay, switched Ethernet, TSN."""

from .base import BusModel
from .can import CAN_MAX_ID, CAN_MAX_PAYLOAD, CanBus, can_frame_bits
from .ethernet import (
    ETH_MAX_PAYLOAD,
    ETH_MIN_PAYLOAD,
    ETH_OVERHEAD_BYTES,
    EthernetBus,
    ethernet_wire_bytes,
)
from .flexray import FlexRayBus, FlexRayConfig
from .frame import Frame, TrafficClass
from .gateway import GATEWAY_LATENCY, VehicleNetwork, build_bus
from .tsn import GateControlList, GateEntry, TsnBus

__all__ = [
    "BusModel",
    "CAN_MAX_ID",
    "CAN_MAX_PAYLOAD",
    "CanBus",
    "ETH_MAX_PAYLOAD",
    "ETH_MIN_PAYLOAD",
    "ETH_OVERHEAD_BYTES",
    "EthernetBus",
    "FlexRayBus",
    "FlexRayConfig",
    "Frame",
    "GATEWAY_LATENCY",
    "GateControlList",
    "GateEntry",
    "TrafficClass",
    "TsnBus",
    "VehicleNetwork",
    "build_bus",
    "can_frame_bits",
    "ethernet_wire_bytes",
]
