"""Network frame model shared by all bus technologies.

A :class:`Frame` is the unit of transmission on a single bus segment.
End-to-end messages that cross gateways are carried by one frame per
segment; the middleware layer (``repro.middleware``) deals in *messages*
and maps them onto frames.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..errors import NetworkError


class TrafficClass(Enum):
    """Criticality class of a transmission (Section 3.1, Hardware Access
    & Communication): deterministic traffic must not be delayed by
    non-deterministic bulk traffic."""

    DETERMINISTIC = "deterministic"   # control traffic with deadlines
    NON_DETERMINISTIC = "non_deterministic"  # best-effort / bulk / streams


_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """One frame on one bus segment.

    Attributes:
        src: sending ECU name.
        dst: destination ECU name, or ``None`` for broadcast (CAN-style).
        payload_bytes: application payload size in bytes.
        priority: technology-specific priority.  For CAN this is the 11-bit
            identifier (lower wins arbitration); for Ethernet it is the
            802.1p PCP class 0..7 (higher is more important).
        traffic_class: deterministic vs non-deterministic.
        payload: opaque application data carried along for delivery.
        created_at: simulated time the frame was enqueued by the sender.
        delivered_at: simulated time of complete reception (set by the bus).
        corrupted: set by fault injection; receivers model a CRC check and
            discard corrupted frames instead of dispatching them.
    """

    src: str
    dst: Optional[str]
    payload_bytes: int
    priority: int = 0
    traffic_class: TrafficClass = TrafficClass.NON_DETERMINISTIC
    payload: Any = None
    label: str = ""
    created_at: float = 0.0
    delivered_at: Optional[float] = None
    corrupted: bool = False
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise NetworkError("payload size cannot be negative")

    @property
    def latency(self) -> float:
        """Queueing + transmission latency; only valid after delivery."""
        if self.delivered_at is None:
            raise NetworkError(f"frame {self.frame_id} not delivered yet")
        return self.delivered_at - self.created_at

    def clone_for_segment(self, frame_id: Optional[int] = None) -> "Frame":
        """Fresh copy (new id, reset timestamps) for the next bus segment.

        Corruption is sticky: a gateway forwards the payload bit-for-bit,
        so a frame mangled on one hop stays mangled on the next.

        Pass ``frame_id`` (e.g. ``sim.next_frame_id()``) to draw from a
        sim-local sequence — required wherever forked worlds must keep
        byte-identical traces; the process-global fallback only suits
        standalone construction.
        """
        return Frame(
            src=self.src,
            dst=self.dst,
            payload_bytes=self.payload_bytes,
            priority=self.priority,
            traffic_class=self.traffic_class,
            payload=self.payload,
            label=self.label,
            corrupted=self.corrupted,
            frame_id=next(_frame_ids) if frame_id is None else frame_id,
        )
