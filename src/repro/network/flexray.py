"""FlexRay bus simulator: static TDMA segment + dynamic minislot segment.

FlexRay (Section 5.3) "offers a combination of time-triggered deterministic
communication and priority-based communication, which can be used to
partition and isolate deterministic and non-deterministic applications."

Model, at frame granularity:

* time is divided into fixed-length **communication cycles**;
* each cycle starts with a **static segment** of equal-length slots, each
  statically assigned to one sender — a frame mapped to slot *k* is
  transmitted in the next cycle whose slot *k* has not started yet;
* the remainder of the cycle is the **dynamic segment**, arbitrated by
  frame identifier (lower wins) in minislot order; a dynamic frame is sent
  only if it fits in the remaining dynamic segment of the current cycle,
  otherwise it waits for the next cycle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, NetworkError
from ..sim import Signal, Simulator
from .base import BusModel
from .frame import Frame, TrafficClass


@dataclass(frozen=True)
class FlexRayConfig:
    """Cycle layout of a FlexRay cluster.

    Attributes:
        cycle_length: seconds per communication cycle.
        static_slots: number of static slots per cycle.
        static_slot_length: seconds per static slot.
        slot_payload_bytes: payload capacity of one static slot.
    """

    cycle_length: float = 0.005
    static_slots: int = 32
    static_slot_length: float = 0.0001
    slot_payload_bytes: int = 32

    def __post_init__(self) -> None:
        if self.static_slots < 1:
            raise ConfigurationError("need at least one static slot")
        if self.static_slot_length <= 0 or self.cycle_length <= 0:
            raise ConfigurationError("slot and cycle lengths must be positive")
        if self.static_segment_length >= self.cycle_length:
            raise ConfigurationError(
                "static segment does not fit into the cycle "
                f"({self.static_segment_length} >= {self.cycle_length})"
            )

    @property
    def static_segment_length(self) -> float:
        return self.static_slots * self.static_slot_length

    @property
    def dynamic_segment_length(self) -> float:
        return self.cycle_length - self.static_segment_length

    def slot_start(self, cycle: int, slot: int) -> float:
        """Absolute start time of static ``slot`` in ``cycle``."""
        return cycle * self.cycle_length + slot * self.static_slot_length


class FlexRayBus(BusModel):
    """Event-driven FlexRay cluster."""

    technology = "flexray"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bitrate_bps: float = 10_000_000.0,
        config: Optional[FlexRayConfig] = None,
    ) -> None:
        super().__init__(sim, name, bitrate_bps)
        self.config = config or FlexRayConfig()
        # slot index -> owning sender ECU
        self._slot_owner: Dict[int, str] = {}
        # slot index -> queued (frame, done)
        self._slot_queue: Dict[int, List[Tuple[Frame, Signal]]] = {}
        # owned slot indices in slot order: the cycle engine only visits
        # these — an unowned slot has no queue, so it can never transmit
        self._owned_slots: List[int] = []
        # sender -> first owned slot (slot_of is on the submit hot path)
        self._ecu_slot: Dict[str, int] = {}
        # dynamic frames: heap of (identifier, seq, frame, done) — the
        # (identifier, seq) prefix is unique, so frames are never compared
        self._dynamic: List[Tuple[int, int, Frame, Signal]] = []
        self._seq = 0
        self._cycle_proc_started = False
        self.static_frames_sent = 0
        self.dynamic_frames_sent = 0
        self.dynamic_deferrals = 0

    # -- configuration -------------------------------------------------------

    def assign_slot(self, slot: int, ecu_name: str) -> None:
        """Statically assign ``slot`` to sender ``ecu_name``."""
        if not 0 <= slot < self.config.static_slots:
            raise ConfigurationError(
                f"slot {slot} out of range 0..{self.config.static_slots - 1}"
            )
        if slot in self._slot_owner:
            raise ConfigurationError(
                f"slot {slot} already owned by {self._slot_owner[slot]!r}"
            )
        self._slot_owner[slot] = ecu_name
        self._slot_queue[slot] = []
        self._owned_slots = sorted(self._slot_owner)
        if ecu_name not in self._ecu_slot or slot < self._ecu_slot[ecu_name]:
            self._ecu_slot[ecu_name] = slot

    def slot_of(self, ecu_name: str) -> Optional[int]:
        """First slot owned by ``ecu_name`` (None if it owns no slot)."""
        return self._ecu_slot.get(ecu_name)

    # -- transmission --------------------------------------------------------

    def submit(self, frame: Frame, done: Signal = None) -> Signal:
        """Queue a frame.

        Deterministic frames go into the sender's static slot; others are
        arbitrated in the dynamic segment by ``frame.priority``.
        """
        self._ensure_cycle_process()
        frame.created_at = self.sim.now
        if done is None:
            done = self.sim.signal(name=f"{self.name}.tx")
        if frame.traffic_class is TrafficClass.DETERMINISTIC:
            slot = self.slot_of(frame.src)
            if slot is None:
                raise NetworkError(
                    f"{frame.src!r} owns no static slot on {self.name!r}"
                )
            if frame.payload_bytes > self.config.slot_payload_bytes:
                raise NetworkError(
                    f"frame exceeds static slot payload "
                    f"({frame.payload_bytes} > {self.config.slot_payload_bytes})"
                )
            self._slot_queue[slot].append((frame, done))
        else:
            self._seq += 1
            heapq.heappush(self._dynamic, (frame.priority, self._seq, frame, done))
        return done

    # -- cycle engine --------------------------------------------------------

    def _ensure_cycle_process(self) -> None:
        if not self._cycle_proc_started:
            self._cycle_proc_started = True
            self.sim.process(self._cycle_loop(), name=f"{self.name}.cycle")

    def _cycle_loop(self):
        cfg = self.config
        cycle = int(self.sim.now // cfg.cycle_length)
        while True:
            cycle_start = cycle * cfg.cycle_length
            # static segment: only owned slots can transmit (assign_slot is
            # the sole way a slot gains a queue), so idle unowned slots are
            # skipped without a yield — they elapse inside the next wait
            for slot in self._owned_slots:
                slot_start = cfg.slot_start(cycle, slot)
                if slot_start < self.sim.now:
                    continue
                wait = slot_start - self.sim.now
                if wait > 0:
                    yield wait
                queue = self._slot_queue.get(slot)
                if queue:
                    frame, done = queue.pop(0)
                    yield cfg.static_slot_length
                    self.static_frames_sent += 1
                    self.record_transmission(cfg.static_slot_length)
                    self._deliver(frame, done)
                # idle slots simply elapse via the next wait
            # dynamic segment
            dyn_start = cycle_start + cfg.static_segment_length
            dyn_end = cycle_start + cfg.cycle_length
            if self.sim.now < dyn_start:
                yield dyn_start - self.sim.now
            while self._dynamic and self.sim.now < dyn_end:
                # heap root == former sort-then-head: lowest (id, seq)
                __, __, frame, done = self._dynamic[0]
                duration = self.wire_time(frame.payload_bytes + 8)
                if self.sim.now + duration > dyn_end:
                    self.dynamic_deferrals += 1
                    break  # does not fit; defer to next cycle
                heapq.heappop(self._dynamic)
                yield duration
                self.dynamic_frames_sent += 1
                self.record_transmission(duration)
                self._deliver(frame, done)
            if dyn_end > self.sim.now:
                yield dyn_end - self.sim.now
            cycle += 1
            if not self._has_pending():
                # park the cycle engine until the next submit, so that an
                # idle FlexRay cluster does not keep the simulation alive
                self._cycle_proc_started = False
                return

    def _has_pending(self) -> bool:
        if self._dynamic:
            return True
        return any(queue for queue in self._slot_queue.values())
