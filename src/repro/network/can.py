"""CAN bus simulator with identifier-based arbitration.

Classic CAN 2.0A semantics at frame granularity:

* the bus is a single broadcast medium;
* when the bus goes idle, the pending frame with the **lowest identifier**
  (``Frame.priority``) wins arbitration, across all attached nodes;
* transmission is **non-preemptive** — a started frame always completes,
  so an urgent frame can be blocked for at most one maximal frame time
  (the classic priority-inversion bound used in CAN response-time
  analysis);
* a CAN data frame carries at most 8 payload bytes; larger payloads are
  rejected (segmentation is a transport-protocol concern, modelled in the
  middleware layer).

Frame timing uses the standard worst-case stuffed length for an 11-bit
identifier frame.

The pending queue is a binary heap keyed on ``(identifier, submit
sequence)`` — each arbitration round is O(log n) instead of the former
full O(n log n) sort, with identical winner selection (ties between equal
identifiers break by submission order, exactly as the sort did).
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from ..errors import NetworkError
from ..sim import Signal, Simulator
from .base import BusModel
from .frame import Frame

#: Maximum payload of a classic CAN data frame.
CAN_MAX_PAYLOAD = 8

#: Highest valid 11-bit identifier.
CAN_MAX_ID = 0x7FF


def can_frame_bits(payload_bytes: int) -> int:
    """Worst-case wire bits of an 11-bit-ID CAN frame with stuffing.

    47 overhead bits, 8 per payload byte, plus worst-case stuff bits on the
    34 stuffable overhead bits and the payload: floor((34 + 8n - 1) / 4).
    """
    if not 0 <= payload_bytes <= CAN_MAX_PAYLOAD:
        raise NetworkError(
            f"CAN payload must be 0..{CAN_MAX_PAYLOAD} bytes, got {payload_bytes}"
        )
    data_bits = 8 * payload_bytes
    stuff_bits = (34 + data_bits - 1) // 4
    return 47 + data_bits + stuff_bits


class CanBus(BusModel):
    """Event-driven CAN segment."""

    technology = "can"

    #: 3-bit interframe space.
    IFS_BITS = 3

    def __init__(self, sim: Simulator, name: str, bitrate_bps: float) -> None:
        super().__init__(sim, name, bitrate_bps)
        # heap of (priority/id, submit sequence, frame, done-signal); the
        # (priority, seq) prefix is unique, so the Frame is never compared
        self._pending: List[Tuple[int, int, Frame, Signal]] = []
        self._seq = 0
        self._busy = False
        #: Frames that have lost at least one arbitration round — each
        #: frame is counted once, at its *first* loss (a frame stuck
        #: behind heavy traffic for K rounds still counts as one loss).
        self.arbitration_losses = 0
        # first-loss bookkeeping, O(1) per round: every entry with a
        # submit sequence above the watermark has never lost a round yet
        self._loss_watermark = 0
        self._fresh_pending = 0

    def submit(self, frame: Frame, done: Signal = None) -> Signal:
        """Queue ``frame`` for arbitration; identifier = ``frame.priority``."""
        if not 0 <= frame.priority <= CAN_MAX_ID:
            raise NetworkError(
                f"CAN identifier must be 0..{CAN_MAX_ID}, got {frame.priority}"
            )
        can_frame_bits(frame.payload_bytes)  # validates payload size
        frame.created_at = self.sim.now
        if done is None:
            done = self.sim.signal(name=f"{self.name}.tx")
        self._seq += 1
        heapq.heappush(self._pending, (frame.priority, self._seq, frame, done))
        self._fresh_pending += 1
        if not self._busy:
            self._start_next()
        return done

    # -- internals ---------------------------------------------------------

    def _start_next(self) -> None:
        if not self._pending:
            return
        self._busy = True
        __, seq, frame, done = heapq.heappop(self._pending)
        if seq > self._loss_watermark:
            self._fresh_pending -= 1
        if self._pending:
            # every still-pending frame just lost this round; only frames
            # above the watermark are losing for the first time
            self.arbitration_losses += self._fresh_pending
            self._fresh_pending = 0
            self._loss_watermark = self._seq
        duration = can_frame_bits(frame.payload_bytes) / self.bitrate_bps
        if self.sim.tracer.enabled:
            self.sim.trace(
                "net.tx_start",
                bus=self.name,
                frame_id=frame.frame_id,
                can_id=frame.priority,
                duration=duration,
            )
        self.sim.schedule(duration, self._finish, frame, done, duration)

    def _finish(self, frame: Frame, done: Signal, duration: float) -> None:
        self.record_transmission(duration)
        self._deliver(frame, done)
        # interframe space before the next arbitration round
        self.sim.schedule(self.IFS_BITS / self.bitrate_bps, self._idle)

    def _idle(self) -> None:
        self._busy = False
        self._start_next()

    @property
    def queue_depth(self) -> int:
        """Frames currently waiting for arbitration."""
        return len(self._pending)

    def worst_case_blocking(self) -> float:
        """Longest time a top-priority frame can wait behind a started frame."""
        return can_frame_bits(CAN_MAX_PAYLOAD) / self.bitrate_bps
