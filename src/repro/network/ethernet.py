"""Switched Ethernet segment with 802.1p strict-priority egress queues.

The segment is modelled as one store-and-forward switch: every attached ECU
has a dedicated full-duplex link to the switch, so the only contention point
is the **egress port** towards each destination.  Each egress port keeps
eight priority queues (PCP 0..7); transmission selection is strict priority
(higher PCP first), non-preemptive.

This is the baseline against which :mod:`repro.network.tsn` adds 802.1Qbv
time-aware gates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..sim import Signal, Simulator
from .base import BusModel
from .frame import Frame

#: Ethernet frame overhead: preamble+SFD (8) + header (14) + FCS (4) + IFG (12).
ETH_OVERHEAD_BYTES = 38

#: Minimum and maximum Ethernet payload sizes.
ETH_MIN_PAYLOAD = 46
ETH_MAX_PAYLOAD = 1500

#: Number of 802.1p priority classes.
N_PRIORITIES = 8


def ethernet_wire_bytes(payload_bytes: int) -> int:
    """Bytes on the wire for one frame carrying ``payload_bytes``."""
    if payload_bytes > ETH_MAX_PAYLOAD:
        raise NetworkError(
            f"payload {payload_bytes} exceeds Ethernet MTU {ETH_MAX_PAYLOAD}"
        )
    return ETH_OVERHEAD_BYTES + max(payload_bytes, ETH_MIN_PAYLOAD)


class EgressPort:
    """One switch egress port: 8 strict-priority FIFO queues.

    Each queued entry carries its precomputed wire duration — computed
    once at enqueue time, not re-derived at selection/transmission (the
    gated TSN subclass re-inspects the head duration on every selection
    round, so this caching is what keeps guard-band checks O(1))."""

    def __init__(self, bus: "EthernetBus", dst: str) -> None:
        self.bus = bus
        self.dst = dst
        self.queues: List[Deque[Tuple[Frame, Signal, float]]] = [
            deque() for _ in range(N_PRIORITIES)
        ]
        self.busy = False
        self.frames_sent = 0

    def enqueue(self, frame: Frame, done: Signal) -> None:
        if not 0 <= frame.priority < N_PRIORITIES:
            raise NetworkError(
                f"Ethernet PCP must be 0..{N_PRIORITIES - 1}, got {frame.priority}"
            )
        duration = self.bus.wire_time(ethernet_wire_bytes(frame.payload_bytes))
        self._admit(frame, duration)
        self.queues[frame.priority].append((frame, done, duration))
        if not self.busy:
            self._start_next()

    def _admit(self, frame: Frame, duration: float) -> None:
        """Admission hook; the TSN subclass rejects frames that can never
        fit any open gate window."""

    def _select(self) -> Optional[Tuple[Frame, Signal, float]]:
        """Strict priority: highest non-empty PCP queue first."""
        for pcp in range(N_PRIORITIES - 1, -1, -1):
            if self.queues[pcp]:
                return self.queues[pcp].popleft()
        return None

    def _start_next(self) -> None:
        item = self._select()
        if item is None:
            return
        frame, done, duration = item
        self.busy = True
        self.bus.sim.schedule(duration, self._finish, frame, done, duration)

    def _finish(self, frame: Frame, done: Signal, duration: float) -> None:
        self.frames_sent += 1
        self.bus.record_transmission(duration)
        self.bus._deliver(frame, done)
        self.busy = False
        self._start_next()

    @property
    def backlog_frames(self) -> int:
        return sum(len(q) for q in self.queues)


class _BroadcastLatch:
    """Countdown completion sink for a broadcast fan-out.

    A class (not a closure) so snapshots taken with a broadcast in flight
    deep-copy the latch into the new world instead of sharing its
    mutable countdown across worlds; it also replaces the per-copy
    Signal allocation (buses only ever call ``fire``).
    """

    __slots__ = ("remaining", "frame", "done")

    def __init__(self, remaining: int, frame: Frame, done: Signal) -> None:
        self.remaining = remaining
        self.frame = frame
        self.done = done

    def fire(self, _value: object) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.done.fire(self.frame)


class EthernetBus(BusModel):
    """Single-switch full-duplex Ethernet segment."""

    technology = "ethernet"

    def __init__(
        self, sim: Simulator, name: str, bitrate_bps: float = 100_000_000.0
    ) -> None:
        super().__init__(sim, name, bitrate_bps)
        self._ports: Dict[str, EgressPort] = {}

    def _port(self, dst: str) -> EgressPort:
        port = self._ports.get(dst)
        if port is None:
            port = self._make_port(dst)
            self._ports[dst] = port
        return port

    def _make_port(self, dst: str) -> EgressPort:
        """Factory hook so the TSN subclass can install gated ports."""
        return EgressPort(self, dst)

    def submit(self, frame: Frame, done: Signal = None) -> Signal:
        """Queue ``frame`` at its destination's egress port.

        Broadcast (``dst=None``) fans out one copy per attached ECU except
        the sender; the returned signal fires when the *last* copy lands.
        """
        frame.created_at = self.sim.now
        if done is None:
            done = self.sim.signal(name=f"{self.name}.tx")
        if frame.dst is not None:
            # ingress-link serialisation is negligible next to egress
            # queueing for a store-and-forward switch; model egress only.
            self._port(frame.dst).enqueue(frame, done)
            return done
        receivers = [e for e in self.attached_ecus if e != frame.src]
        if not receivers:
            self.sim.post(0.0, done.fire, frame)
            return done
        latch = _BroadcastLatch(len(receivers), frame, done)
        for ecu in receivers:
            copy = frame.clone_for_segment(frame_id=self.sim.next_frame_id())
            copy.dst = ecu
            copy.created_at = self.sim.now
            self._port(ecu).enqueue(copy, latch)
        return done

    def port_backlog(self, dst: str) -> int:
        """Frames queued towards ``dst`` (0 if the port was never used)."""
        port = self._ports.get(dst)
        return port.backlog_frames if port else 0
