"""Common bus interface.

Every bus simulator exposes the same surface so that the middleware and
gateway layers are technology-agnostic:

* :meth:`BusModel.submit` — enqueue a frame for transmission; returns a
  :class:`~repro.sim.kernel.Signal` that fires with the frame on complete
  delivery;
* :meth:`BusModel.add_listener` — register a reception callback for an
  attached ECU.

Delivery semantics: the listener of the destination ECU (or every listener
except the sender, for broadcast frames) is invoked at the instant the last
bit arrives.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import NetworkError
from ..sim import Signal, Simulator
from .frame import Frame

Listener = Callable[[Frame], None]


class BusModel:
    """Abstract base for CAN, FlexRay and Ethernet segment simulators."""

    technology = "abstract"

    def __init__(self, sim: Simulator, name: str, bitrate_bps: float) -> None:
        if bitrate_bps <= 0:
            raise NetworkError(f"bus {name!r}: bitrate must be positive")
        self.sim = sim
        self.name = name
        self.bitrate_bps = bitrate_bps
        self._listeners: Dict[str, Listener] = {}
        # broadcast fan-out snapshot, rebuilt lazily after add/remove so
        # the hot path never copies the listener table per delivery
        self._listener_snapshot: Optional[List[tuple]] = None
        self.frames_delivered = 0
        self.bytes_delivered = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.frames_delayed = 0
        #: fault-injection hook consulted at delivery time.  ``None`` (the
        #: default) keeps the hot path at a single attribute test — the
        #: same zero-overhead pattern as the tracing guards.  When set, it
        #: is called as ``hook(bus, frame)`` and returns ``None`` (deliver
        #: normally) or an action tuple: ``("drop",)``, ``("corrupt",)``
        #: or ``("delay", seconds)``.
        self._fault_hook: Optional[Callable[["BusModel", Frame], Optional[tuple]]] = None
        #: accumulated seconds the medium spent transmitting (wire
        #: occupancy; the basis for observed-utilization measurements)
        self.transmit_time = 0.0
        # cached per-bus instruments; no-ops while metrics are disabled
        metrics = sim.metrics
        self._m_frames = metrics.counter("net.frames", bus=name)
        self._m_bytes = metrics.counter("net.bytes", bus=name)
        self._m_latency = metrics.histogram("net.latency", bus=name)

    def record_transmission(self, seconds: float) -> None:
        """Account wire occupancy for a completed transmission."""
        self.transmit_time += seconds

    # -- attachment --------------------------------------------------------

    def add_listener(self, ecu_name: str, listener: Listener) -> None:
        """Register ``listener`` as ECU ``ecu_name``'s receive handler."""
        self._listeners[ecu_name] = listener
        self._listener_snapshot = None

    def remove_listener(self, ecu_name: str) -> None:
        """Detach an ECU's receive handler (e.g. on ECU failure)."""
        self._listeners.pop(ecu_name, None)
        self._listener_snapshot = None

    @property
    def attached_ecus(self) -> List[str]:
        return list(self._listeners)

    # -- transmission --------------------------------------------------------

    def submit(self, frame: Frame, done: Optional[Signal] = None) -> Signal:
        """Queue ``frame``; the returned signal fires on delivery.

        ``done`` lets a batching caller supply its own completion sink —
        any object with ``fire(frame)`` — so the hot path can skip the
        per-frame :class:`Signal` allocation and its deferred-dispatch
        event (see ``VehicleNetwork.send_segments``).  When omitted, a
        fresh signal is created and returned.
        """
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def _deliver(self, frame: Frame, done: Optional[Signal]) -> None:
        """Mark ``frame`` delivered now and fan it out to receivers."""
        hook = self._fault_hook
        if hook is not None:
            action = hook(self, frame)
            if action is not None:
                kind = action[0]
                if kind == "drop":
                    # the frame vanishes: completion sinks never fire, so
                    # upper layers see it exactly as a lost transmission
                    self.frames_dropped += 1
                    return
                if kind == "delay":
                    self.frames_delayed += 1
                    self.sim.schedule(action[1], self._finish_delivery, frame, done)
                    return
                # "corrupt": deliver the mangled frame; receivers model a
                # CRC check and discard it (see Endpoint._on_frame)
                frame.corrupted = True
                self.frames_corrupted += 1
        self._finish_delivery(frame, done)

    def _finish_delivery(self, frame: Frame, done: Optional[Signal]) -> None:
        frame.delivered_at = self.sim.now
        self.frames_delivered += 1
        self.bytes_delivered += frame.payload_bytes
        self._m_frames.inc()
        self._m_bytes.inc(frame.payload_bytes)
        self._m_latency.observe(frame.latency)
        if self.sim.tracer.enabled:
            # guarded at the call site: building the kwargs dict per
            # delivery is pure overhead while tracing is off
            self.sim.trace(
                "net.delivery",
                bus=self.name,
                frame_id=frame.frame_id,
                src=frame.src,
                dst=frame.dst,
                label=frame.label,
                latency=frame.latency,
                traffic_class=frame.traffic_class.value,
            )
        if frame.dst is None:
            # iterate a prebuilt snapshot: a listener mutating the table
            # mid-fan-out invalidates the cache for the *next* delivery,
            # while this delivery keeps the pre-mutation view — exactly
            # the semantics the per-delivery list() copy provided
            listeners = self._listener_snapshot
            if listeners is None:
                listeners = self._listener_snapshot = list(self._listeners.items())
            src = frame.src
            for ecu, listener in listeners:
                if ecu != src:
                    listener(frame)
        else:
            listener = self._listeners.get(frame.dst)
            if listener is not None:
                listener(frame)
        if done is not None:
            done.fire(frame)

    def wire_time(self, wire_bytes: float) -> float:
        """Seconds to clock ``wire_bytes`` onto this bus."""
        return wire_bytes * 8.0 / self.bitrate_bps
