"""Time-Sensitive Networking (IEEE 802.1Qbv) time-aware shaper.

The paper (Section 5.3): "in the upcoming TSN standards for Ethernet ...
highly critical applications requiring deterministic communication can use
a time-triggered scheme, where non-deterministic applications will use
priority-based communication and the transmission selection on switches
will prevent its interference on deterministic communication."

Model: each egress port runs a periodic **gate control list** (GCL).  Each
GCL entry opens a subset of the eight priority queues for a fixed duration.
A frame may only start transmission if

* its queue's gate is currently open, and
* the frame fits into the remaining open time of the gate (this is the
  *guard band* that protects the next deterministic window from a
  straddling best-effort frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim import Simulator
from .ethernet import EgressPort, EthernetBus
from .frame import Frame


@dataclass(frozen=True)
class GateEntry:
    """One GCL entry: the set of open priority classes and its duration."""

    open_priorities: FrozenSet[int]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("gate entry duration must be positive")
        if any(not 0 <= p <= 7 for p in self.open_priorities):
            raise ConfigurationError("gate priorities must be 0..7")


class GateControlList:
    """A cyclic schedule of :class:`GateEntry` items."""

    def __init__(self, entries: Sequence[GateEntry]) -> None:
        if not entries:
            raise ConfigurationError("gate control list cannot be empty")
        self.entries = list(entries)
        self.cycle = sum(e.duration for e in self.entries)

    @classmethod
    def tas_split(
        cls,
        cycle: float,
        critical_window: float,
        critical_priorities: Sequence[int] = (7,),
    ) -> "GateControlList":
        """Classic two-window schedule: a protected critical window followed
        by a best-effort window for all remaining classes."""
        if not 0 < critical_window < cycle:
            raise ConfigurationError("critical window must fit inside the cycle")
        crit = frozenset(critical_priorities)
        rest = frozenset(range(8)) - crit
        return cls(
            [
                GateEntry(crit, critical_window),
                GateEntry(rest, cycle - critical_window),
            ]
        )

    def state_at(self, time: float) -> Tuple[FrozenSet[int], float]:
        """Return (open priority set, seconds until this entry closes)."""
        offset = time % self.cycle
        for entry in self.entries:
            if offset < entry.duration:
                return entry.open_priorities, entry.duration - offset
            offset -= entry.duration
        # floating point edge: treat as start of cycle
        first = self.entries[0]
        return first.open_priorities, first.duration

    def next_open(self, time: float, priority: int) -> float:
        """Earliest time >= ``time`` at which ``priority``'s gate is open.

        Raises:
            ConfigurationError: if the priority is never opened by this GCL.
        """
        if not any(priority in e.open_priorities for e in self.entries):
            raise ConfigurationError(f"priority {priority} never opens in GCL")
        offset = time % self.cycle
        base = time - offset
        for lap in range(2):  # at most one full wrap needed
            cursor = 0.0
            for entry in self.entries:
                start = base + lap * self.cycle + cursor
                end = start + entry.duration
                if priority in entry.open_priorities and end > time:
                    return max(start, time)
                cursor += entry.duration
        raise ConfigurationError("unreachable: gate scan failed")  # pragma: no cover


class GatedEgressPort(EgressPort):
    """An egress port whose transmission selection honours a GCL."""

    def __init__(self, bus: "TsnBus", dst: str, gcl: GateControlList) -> None:
        super().__init__(bus, dst)
        self.gcl = gcl
        self.gate_deferrals = 0
        self._wakeup_pending = False
        # widest gate window ever open per priority class, precomputed so
        # the can-this-frame-ever-fit admission check is O(1) per enqueue
        self._max_open_window = [0.0] * 8
        for entry in gcl.entries:
            for pcp in entry.open_priorities:
                if entry.duration > self._max_open_window[pcp]:
                    self._max_open_window[pcp] = entry.duration

    def _admit(self, frame: Frame, duration: float) -> None:
        if duration > self._max_open_window[frame.priority] + 1e-12:
            from ..errors import NetworkError

            raise NetworkError(
                f"frame of {frame.payload_bytes} B can never fit a gate window "
                f"open for priority {frame.priority}"
            )

    def _select(self):
        """Strict priority among queues whose gate is open *and* whose head
        frame fits in the remaining open window (guard band)."""
        now = self.bus.sim.now
        open_set, remaining = self.gcl.state_at(now)
        for pcp in range(7, -1, -1):
            if not self.queues[pcp]:
                continue
            if pcp not in open_set:
                continue
            duration = self.queues[pcp][0][2]
            if duration <= remaining + 1e-12:
                return self.queues[pcp].popleft()
            self.gate_deferrals += 1
        self._arm_wakeup()
        return None

    def _arm_wakeup(self) -> None:
        """Re-attempt selection when the earliest relevant gate re-opens."""
        if self._wakeup_pending:
            return
        now = self.bus.sim.now
        candidates = []
        for pcp in range(8):
            if self.queues[pcp]:
                candidates.append(self.gcl.next_open(now, pcp))
        if not candidates:
            return
        wake_at = min(c for c in candidates)
        if wake_at <= now:
            # gate is open but the head frame does not fit: wake when the
            # current entry closes and the next one begins
            __, remaining = self.gcl.state_at(now)
            wake_at = now + remaining
        # nudge a nanosecond past the boundary so floating-point error can
        # never leave us a denormal-width sliver before the gate change
        self._wakeup_pending = True
        self.bus.sim.at(max(wake_at, now) + 1e-9, self._wakeup)

    def _wakeup(self) -> None:
        self._wakeup_pending = False
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        item = self._select()
        if item is None:
            self.busy = False
            return
        frame, done, duration = item
        self.busy = True
        self.bus.sim.schedule(duration, self._finish, frame, done, duration)


class TsnBus(EthernetBus):
    """Ethernet segment whose egress ports run 802.1Qbv gates."""

    technology = "ethernet"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bitrate_bps: float = 1_000_000_000.0,
        gcl: Optional[GateControlList] = None,
    ) -> None:
        super().__init__(sim, name, bitrate_bps)
        #: Default GCL: 20% protected window for PCP 7 every 500 us.
        self.gcl = gcl or GateControlList.tas_split(
            cycle=0.0005, critical_window=0.0001, critical_priorities=(7,)
        )

    def _make_port(self, dst: str):
        return GatedEgressPort(self, dst, self.gcl)

    def total_gate_deferrals(self) -> int:
        """Frames held back by a closed/insufficient gate, across all ports."""
        return sum(
            port.gate_deferrals
            for port in self._ports.values()
            if isinstance(port, GatedEgressPort)
        )
