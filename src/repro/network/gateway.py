"""Gateway ECU logic and the multi-segment vehicle network.

A :class:`VehicleNetwork` instantiates one bus simulator per
:class:`~repro.hw.topology.BusSpec` in a topology and wires gateway ECUs
(ECUs attached to more than one bus) to forward frames between segments
along the topology's shortest routes.  The result is a single
:meth:`VehicleNetwork.send` primitive with end-to-end delivery signals,
which the middleware builds on.

Routing is cached: the shortest path (and its hop decomposition) for a
``(src, dst)`` pair is computed once per *failure set* and reused for
every subsequent send.  The cache key includes ``frozenset(failed_buses)``,
so :meth:`fail_bus`/:meth:`repair_bus` never serve stale routes — entries
computed under a different failure set simply stop matching, and routes
for a previously seen failure set are reused without recomputation.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import ConfigurationError, NetworkError
from ..sim import Signal, Simulator
from ..hw.topology import BusSpec, Topology
from .base import BusModel, Listener
from .can import CanBus
from .ethernet import EthernetBus
from .flexray import FlexRayBus
from .frame import Frame, TrafficClass
from .tsn import GateControlList, TsnBus

#: Per-hop store-and-forward processing delay in a gateway ECU.
GATEWAY_LATENCY = 0.0002

#: One gateway hop: (from_ecu, bus, to_ecu).
Hop = Tuple[str, str, str]


class _HopCompletion:
    """Minimal completion sink for batched segment hops.

    Quacks like a :class:`~repro.sim.Signal` as far as the bus simulators
    care (they only call ``fire``), but invokes its callback synchronously
    — no per-frame Signal allocation and no deferred-dispatch event.  The
    callback only *schedules* follow-up work (gateway forward after
    ``GATEWAY_LATENCY``, or the countdown latch), so delivery timing is
    unchanged; one sink is shared by every segment crossing its hop.
    """

    __slots__ = ("fire",)

    def __init__(self, callback: Callable[[Frame], None]) -> None:
        self.fire = callback


class _SegmentBatch:
    """In-flight state of one batched multi-segment transfer.

    Everything here is bound methods and :func:`functools.partial` —
    never closures — so a snapshot taken mid-transfer deep-copies the
    batch (countdown latch included) into the new world instead of
    aliasing the original's mutable cells.
    """

    __slots__ = ("net", "hops", "hop_buses", "hop_priorities", "hop_done",
                 "traffic_class", "label", "remaining", "done")

    def __init__(
        self,
        net: "VehicleNetwork",
        hops: Tuple[Hop, ...],
        hop_buses: List[BusModel],
        hop_priorities: List[int],
        traffic_class: TrafficClass,
        label: str,
        n_segments: int,
        done: Signal,
    ) -> None:
        self.net = net
        self.hops = hops
        self.hop_buses = hop_buses
        self.hop_priorities = hop_priorities
        self.traffic_class = traffic_class
        self.label = label
        self.remaining = n_segments
        self.done = done
        # one completion sink per hop, shared by all segments: the
        # delivered frame itself carries everything the next hop needs
        self.hop_done = [
            _HopCompletion(partial(self._forward, index + 1))
            for index in range(len(hops) - 1)
        ]
        self.hop_done.append(_HopCompletion(self._count_down))

    def submit_hop(self, index: int, payload_bytes: int, payload: object) -> None:
        from_ecu, __, to_ecu = self.hops[index]
        frame = self.net._new_frame(
            from_ecu, to_ecu, payload_bytes,
            self.hop_priorities[index], self.traffic_class, payload, self.label,
        )
        self.hop_buses[index].submit(frame, self.hop_done[index])

    def _forward(self, next_index: int, frame: Frame) -> None:
        net = self.net
        net.gateway_forwards += 1
        net.sim.schedule(
            GATEWAY_LATENCY, self.submit_hop, next_index,
            frame.payload_bytes, frame.payload,
        )
        # the intermediate-hop frame is dead: payload extracted, trace
        # recorded, no listener retains gateway-addressed frames
        net._recycle_frame(frame)

    def _count_down(self, frame: Frame) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.done.fire(frame)


def build_bus(sim: Simulator, spec: BusSpec, gcl: Optional[GateControlList] = None) -> BusModel:
    """Instantiate the right simulator class for a bus spec."""
    if spec.technology == "can":
        return CanBus(sim, spec.name, spec.bitrate_bps)
    if spec.technology == "flexray":
        return FlexRayBus(sim, spec.name, spec.bitrate_bps)
    if spec.technology == "ethernet":
        if spec.tsn_capable:
            return TsnBus(sim, spec.name, spec.bitrate_bps, gcl=gcl)
        return EthernetBus(sim, spec.name, spec.bitrate_bps)
    raise ConfigurationError(f"no simulator for technology {spec.technology!r}")


class VehicleNetwork:
    """All bus segments of a topology plus gateway forwarding."""

    #: Factory hook: benchmark shims substitute legacy bus simulators here.
    _bus_factory = staticmethod(build_bus)

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        gcl: Optional[GateControlList] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.buses: Dict[str, BusModel] = {
            spec.name: self._bus_factory(sim, spec, gcl) for spec in topology.buses
        }
        #: Bus-node names, frozen once — route filtering must not rebuild
        #: this set per call.
        self._bus_names: FrozenSet[str] = frozenset(self.buses)
        self._receivers: Dict[str, Callable[[Frame], None]] = {}
        self.gateway_forwards = 0
        self._failed_buses: set = set()
        self._failed_key: FrozenSet[str] = frozenset()
        #: (src, dst, frozenset(failed_buses)) -> (route, hops)
        self._route_cache: Dict[
            Tuple[str, str, FrozenSet[str]], Tuple[List[str], Tuple[Hop, ...]]
        ] = {}
        #: Bumped whenever the failure set changes; layers caching derived
        #: route data (e.g. middleware segment plans) key on this.
        self.route_epoch = 0
        self.reroutes = 0
        metrics = sim.metrics
        self._m_cache_hit = metrics.counter("net.route_cache.hit")
        self._m_cache_miss = metrics.counter("net.route_cache.miss")
        #: free list of dead intermediate-hop frames awaiting reuse
        self._frame_pool: List[Frame] = []
        for ecu in topology.ecus:
            for bus_spec in topology.buses_of(ecu.name):
                self.buses[bus_spec.name].add_listener(
                    ecu.name, partial(self._dispatch_frame, ecu.name)
                )
        self._auto_assign_flexray_slots()
        # snapshot integration: forks find their copy of the network under
        # sim.world["network"]; the topology and its routing graph are
        # immutable structure shared by reference across forks
        sim.adopt("network", self)
        sim.share(topology, topology.graph)

    def __getstate__(self) -> dict:
        # pooled frames belong to this world's free list only (the same
        # hygiene as EventQueue: restored worlds start with an empty pool)
        state = self.__dict__.copy()
        state["_frame_pool"] = []
        return state

    def _auto_assign_flexray_slots(self) -> None:
        """Give every ECU on a FlexRay cluster one static slot, in
        attachment order — the minimal viable slot plan; callers needing a
        custom layout can use :meth:`FlexRayBus.assign_slot` directly."""
        for spec in self.topology.buses:
            if spec.technology != "flexray":
                continue
            bus = self.buses[spec.name]
            if not isinstance(bus, FlexRayBus):
                continue  # pragma: no cover - build_bus guarantees this
            for slot, ecu in enumerate(self.topology.ecus_on(spec.name)):
                if slot >= bus.config.static_slots:
                    break
                bus.assign_slot(slot, ecu.name)

    # -- endpoint registration ----------------------------------------------

    def register_receiver(self, ecu_name: str, handler: Callable[[Frame], None]) -> None:
        """Install the ECU-level frame handler (one per ECU)."""
        self.topology.ecu(ecu_name)
        self._receivers[ecu_name] = handler

    def unregister_receiver(self, ecu_name: str) -> None:
        """Remove an ECU's handler (ECU failure or shutdown)."""
        self._receivers.pop(ecu_name, None)

    def _dispatch_frame(self, ecu_name: str, frame: Frame) -> None:
        """Per-ECU segment listener (installed as a bound partial)."""
        if frame.dst is not None and frame.dst != ecu_name:
            return
        handler = self._receivers.get(ecu_name)
        if handler is not None:
            handler(frame)

    # -- frame pool ---------------------------------------------------------

    def _new_frame(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        priority: int,
        traffic_class: TrafficClass,
        payload: object,
        label: str,
    ) -> Frame:
        """Build (or recycle) one segment frame with a sim-local id."""
        pool = self._frame_pool
        if pool:
            frame = pool.pop()
            frame.src = src
            frame.dst = dst
            frame.payload_bytes = payload_bytes
            frame.priority = priority
            frame.traffic_class = traffic_class
            frame.payload = payload
            frame.label = label
            frame.created_at = 0.0
            frame.delivered_at = None
            frame.corrupted = False
            frame.frame_id = self.sim.next_frame_id()
            return frame
        return Frame(
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            priority=priority,
            traffic_class=traffic_class,
            payload=payload,
            label=label,
            frame_id=self.sim.next_frame_id(),
        )

    def _recycle_frame(self, frame: Frame) -> None:
        """Return a dead intermediate-hop frame to the free list.

        Only the gateway forwarding path calls this: frames addressed to a
        gateway ECU are consumed on arrival (their payload moves to a
        fresh frame on the next segment) and nothing above the network
        layer ever holds them.  Final-hop frames escape to endpoints and
        delivery signals and are never recycled.
        """
        frame.payload = None
        self._frame_pool.append(frame)

    # -- bus failure & redundant channels -------------------------------------

    def fail_bus(self, bus_name: str) -> None:
        """Take a bus segment out of service (cable cut / guardian shutdown).

        Subsequent sends route around it when the topology offers a
        redundant channel (the RACE-style ring of Section 5.3); otherwise
        they raise :class:`~repro.errors.ConfigurationError` (no path).
        """
        self.bus(bus_name)  # validate
        if bus_name not in self._failed_buses:
            self._failed_buses.add(bus_name)
            self._failed_key = frozenset(self._failed_buses)
            self.route_epoch += 1

    def repair_bus(self, bus_name: str) -> None:
        """Return a failed segment to service."""
        if bus_name in self._failed_buses:
            self._failed_buses.discard(bus_name)
            self._failed_key = frozenset(self._failed_buses)
            self.route_epoch += 1

    @property
    def failed_buses(self) -> List[str]:
        return sorted(self._failed_buses)

    def invalidate_routes(self) -> None:
        """Drop every cached route (call after mutating the topology)."""
        self._route_cache.clear()
        self.route_epoch += 1

    def _resolve(self, src: str, dst: str) -> Tuple[List[str], Tuple[Hop, ...]]:
        """Cached (route, hops) for the current failure set.

        ``reroutes`` counts every resolution performed while at least one
        bus is failed — i.e. sends routed under degraded conditions —
        whether or not the route came from the cache.
        """
        key = (src, dst, self._failed_key)
        entry = self._route_cache.get(key)
        if entry is None:
            self._m_cache_miss.inc()
            route = self._compute_route(src, dst)
            # route alternates ecu, bus, ecu, bus, ..., ecu
            hops = tuple(
                (route[i], route[i + 1], route[i + 2])
                for i in range(0, len(route) - 1, 2)
            )
            entry = (route, hops)
            self._route_cache[key] = entry
        else:
            self._m_cache_hit.inc()
        if self._failed_key:
            self.reroutes += 1
        return entry

    def _compute_route(self, src: str, dst: str) -> List[str]:
        """Topology route honouring failed segments (cache miss path)."""
        if not self._failed_buses:
            return self.topology.route(src, dst)
        graph = self.topology.graph.copy()
        graph.remove_nodes_from(self._failed_buses)
        try:
            return nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise ConfigurationError(
                f"no surviving path {src!r} -> {dst!r} "
                f"(failed buses: {sorted(self._failed_buses)})"
            ) from None

    def _route(self, src: str, dst: str) -> List[str]:
        """Topology route honouring failed segments."""
        return self._resolve(src, dst)[0]

    # -- sending ------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        *,
        priority: int = 0,
        traffic_class: TrafficClass = TrafficClass.NON_DETERMINISTIC,
        payload: object = None,
        label: str = "",
    ) -> Signal:
        """Send a frame end to end, hopping gateways as needed.

        Returns a signal that fires with the final-segment frame once the
        message reaches ``dst``.  Payloads exceeding a CAN segment's frame
        limit raise :class:`NetworkError` — segmentation belongs to the
        transport layer in :mod:`repro.middleware`.
        """
        __, hops = self._resolve(src, dst)
        done = self.sim.signal(name=f"net.{src}->{dst}")
        self._send_hop(hops, 0, payload_bytes, priority, traffic_class, payload, label, done)
        return done

    def send_segments(
        self,
        src: str,
        dst: str,
        sizes: Sequence[int],
        *,
        priority: int = 0,
        traffic_class: TrafficClass = TrafficClass.NON_DETERMINISTIC,
        payloads: Optional[Sequence[object]] = None,
        label: str = "",
    ) -> Signal:
        """Submit ``len(sizes)`` related frames along one route, batched.

        The fast path behind middleware segmentation: the route is resolved
        once for the whole batch, per-hop segment priorities are computed
        once, gateway forwarding uses one shared closure per hop (instead
        of one per segment per hop), and completion is a single countdown
        latch — the returned signal fires with the final segment's frame
        once *all* segments have reached ``dst``.  Per-segment delivery
        order and timing are identical to ``len(sizes)`` individual
        :meth:`send` calls issued back-to-back.
        """
        __, hops = self._resolve(src, dst)
        done = self.sim.signal(name=f"net.{src}->{dst}")
        n_segments = len(sizes)
        if n_segments == 0:
            self.sim.post(0.0, done.fire, None)
            return done
        if payloads is None:
            payloads = [None] * n_segments
        buses = self.buses
        hop_buses = [buses[bus_name] for (__, bus_name, __) in hops]
        hop_priorities = [
            self._segment_priority(bus, priority, traffic_class) for bus in hop_buses
        ]
        batch = _SegmentBatch(
            self, hops, hop_buses, hop_priorities, traffic_class, label,
            n_segments, done,
        )
        for size, payload in zip(sizes, payloads):
            batch.submit_hop(0, size, payload)
        return done

    def _send_hop(
        self,
        hops: Tuple[Hop, ...],
        index: int,
        payload_bytes: int,
        priority: int,
        traffic_class: TrafficClass,
        payload: object,
        label: str,
        done: Signal,
    ) -> None:
        from_ecu, bus_name, to_ecu = hops[index]
        bus = self.buses[bus_name]
        frame = self._new_frame(
            from_ecu, to_ecu, payload_bytes,
            self._segment_priority(bus, priority, traffic_class),
            traffic_class, payload, label,
        )
        leg_done = bus.submit(frame)

        if index == len(hops) - 1:
            leg_done.add_callback(done.fire)
            return

        leg_done.add_callback(
            partial(
                self._forward_single, hops, index + 1,
                payload_bytes, priority, traffic_class, payload, label, done,
            )
        )

    def _forward_single(
        self,
        hops: Tuple[Hop, ...],
        next_index: int,
        payload_bytes: int,
        priority: int,
        traffic_class: TrafficClass,
        payload: object,
        label: str,
        done: Signal,
        frame: Frame,
    ) -> None:
        """Gateway store-and-forward step for an unbatched send."""
        self.gateway_forwards += 1
        self.sim.schedule(
            GATEWAY_LATENCY, self._send_hop, hops, next_index,
            payload_bytes, priority, traffic_class, payload, label, done,
        )
        self._recycle_frame(frame)

    @staticmethod
    def _segment_priority(bus: BusModel, priority: int, traffic_class: TrafficClass) -> int:
        """Map a technology-neutral priority onto the segment's scheme.

        The caller passes CAN-style semantics (lower = more urgent, range
        0..2047).  Ethernet wants PCP 0..7 with higher = more urgent, so we
        invert and clamp; deterministic traffic is pinned to PCP 7 (the
        protected TSN class).
        """
        if isinstance(bus, (EthernetBus,)):
            if traffic_class is TrafficClass.DETERMINISTIC:
                return 7
            pcp = 6 - min(priority // 300, 6)
            return max(0, pcp)
        return priority

    def route_buses(self, src: str, dst: str) -> List[BusSpec]:
        """Bus specs along the live route (failed segments excluded)."""
        bus_names = self._bus_names
        return [
            self.topology.bus(node)
            for node in self._route(src, dst)
            if node in bus_names
        ]

    # -- stats ----------------------------------------------------------------

    def bus(self, name: str) -> BusModel:
        """Access one segment simulator by name."""
        try:
            return self.buses[name]
        except KeyError:
            raise NetworkError(f"unknown bus {name!r}") from None

    def total_frames_delivered(self) -> int:
        return sum(bus.frames_delivered for bus in self.buses.values())
