"""Gateway ECU logic and the multi-segment vehicle network.

A :class:`VehicleNetwork` instantiates one bus simulator per
:class:`~repro.hw.topology.BusSpec` in a topology and wires gateway ECUs
(ECUs attached to more than one bus) to forward frames between segments
along the topology's shortest routes.  The result is a single
:meth:`VehicleNetwork.send` primitive with end-to-end delivery signals,
which the middleware builds on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, NetworkError
from ..sim import Signal, Simulator
from ..hw.topology import BusSpec, Topology
from .base import BusModel, Listener
from .can import CanBus
from .ethernet import EthernetBus
from .flexray import FlexRayBus
from .frame import Frame, TrafficClass
from .tsn import GateControlList, TsnBus

#: Per-hop store-and-forward processing delay in a gateway ECU.
GATEWAY_LATENCY = 0.0002


def build_bus(sim: Simulator, spec: BusSpec, gcl: Optional[GateControlList] = None) -> BusModel:
    """Instantiate the right simulator class for a bus spec."""
    if spec.technology == "can":
        return CanBus(sim, spec.name, spec.bitrate_bps)
    if spec.technology == "flexray":
        return FlexRayBus(sim, spec.name, spec.bitrate_bps)
    if spec.technology == "ethernet":
        if spec.tsn_capable:
            return TsnBus(sim, spec.name, spec.bitrate_bps, gcl=gcl)
        return EthernetBus(sim, spec.name, spec.bitrate_bps)
    raise ConfigurationError(f"no simulator for technology {spec.technology!r}")


class VehicleNetwork:
    """All bus segments of a topology plus gateway forwarding."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        gcl: Optional[GateControlList] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.buses: Dict[str, BusModel] = {
            spec.name: build_bus(sim, spec, gcl) for spec in topology.buses
        }
        self._receivers: Dict[str, Callable[[Frame], None]] = {}
        self.gateway_forwards = 0
        self._failed_buses: set = set()
        self.reroutes = 0
        for ecu in topology.ecus:
            for bus_spec in topology.buses_of(ecu.name):
                self.buses[bus_spec.name].add_listener(
                    ecu.name, self._make_segment_listener(ecu.name)
                )
        self._auto_assign_flexray_slots()

    def _auto_assign_flexray_slots(self) -> None:
        """Give every ECU on a FlexRay cluster one static slot, in
        attachment order — the minimal viable slot plan; callers needing a
        custom layout can use :meth:`FlexRayBus.assign_slot` directly."""
        for spec in self.topology.buses:
            if spec.technology != "flexray":
                continue
            bus = self.buses[spec.name]
            if not isinstance(bus, FlexRayBus):
                continue  # pragma: no cover - build_bus guarantees this
            for slot, ecu in enumerate(self.topology.ecus_on(spec.name)):
                if slot >= bus.config.static_slots:
                    break
                bus.assign_slot(slot, ecu.name)

    # -- endpoint registration ----------------------------------------------

    def register_receiver(self, ecu_name: str, handler: Callable[[Frame], None]) -> None:
        """Install the ECU-level frame handler (one per ECU)."""
        self.topology.ecu(ecu_name)
        self._receivers[ecu_name] = handler

    def unregister_receiver(self, ecu_name: str) -> None:
        """Remove an ECU's handler (ECU failure or shutdown)."""
        self._receivers.pop(ecu_name, None)

    def _make_segment_listener(self, ecu_name: str) -> Listener:
        def on_frame(frame: Frame) -> None:
            if frame.dst is not None and frame.dst != ecu_name:
                return
            handler = self._receivers.get(ecu_name)
            if handler is not None:
                handler(frame)

        return on_frame

    # -- sending ------------------------------------------------------------

    # -- bus failure & redundant channels -------------------------------------

    def fail_bus(self, bus_name: str) -> None:
        """Take a bus segment out of service (cable cut / guardian shutdown).

        Subsequent sends route around it when the topology offers a
        redundant channel (the RACE-style ring of Section 5.3); otherwise
        they raise :class:`~repro.errors.ConfigurationError` (no path).
        """
        self.bus(bus_name)  # validate
        self._failed_buses.add(bus_name)

    def repair_bus(self, bus_name: str) -> None:
        """Return a failed segment to service."""
        self._failed_buses.discard(bus_name)

    @property
    def failed_buses(self) -> List[str]:
        return sorted(self._failed_buses)

    def _route(self, src: str, dst: str) -> List[str]:
        """Topology route honouring failed segments."""
        if not self._failed_buses:
            return self.topology.route(src, dst)
        import networkx as nx

        graph = self.topology.graph.copy()
        graph.remove_nodes_from(self._failed_buses)
        try:
            route = nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise ConfigurationError(
                f"no surviving path {src!r} -> {dst!r} "
                f"(failed buses: {sorted(self._failed_buses)})"
            ) from None
        self.reroutes += 1
        return route

    def send(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        *,
        priority: int = 0,
        traffic_class: TrafficClass = TrafficClass.NON_DETERMINISTIC,
        payload: object = None,
        label: str = "",
    ) -> Signal:
        """Send a frame end to end, hopping gateways as needed.

        Returns a signal that fires with the final-segment frame once the
        message reaches ``dst``.  Payloads exceeding a CAN segment's frame
        limit raise :class:`NetworkError` — segmentation belongs to the
        transport layer in :mod:`repro.middleware`.
        """
        route = self._route(src, dst)
        # route alternates ecu, bus, ecu, bus, ..., ecu
        hops: List[Tuple[str, str, str]] = []  # (from_ecu, bus, to_ecu)
        for i in range(0, len(route) - 1, 2):
            hops.append((route[i], route[i + 1], route[i + 2]))
        done = self.sim.signal(name=f"net.{src}->{dst}")
        self._send_hop(hops, 0, payload_bytes, priority, traffic_class, payload, label, done)
        return done

    def _send_hop(
        self,
        hops: List[Tuple[str, str, str]],
        index: int,
        payload_bytes: int,
        priority: int,
        traffic_class: TrafficClass,
        payload: object,
        label: str,
        done: Signal,
    ) -> None:
        from_ecu, bus_name, to_ecu = hops[index]
        bus = self.buses[bus_name]
        frame = Frame(
            src=from_ecu,
            dst=to_ecu,
            payload_bytes=payload_bytes,
            priority=self._segment_priority(bus, priority, traffic_class),
            traffic_class=traffic_class,
            payload=payload,
            label=label,
        )
        leg_done = bus.submit(frame)

        if index == len(hops) - 1:
            leg_done.add_callback(done.fire)
            return

        def forward(_frame) -> None:
            self.gateway_forwards += 1
            self.sim.schedule(
                GATEWAY_LATENCY,
                self._send_hop,
                hops,
                index + 1,
                payload_bytes,
                priority,
                traffic_class,
                payload,
                label,
                done,
            )

        leg_done.add_callback(forward)

    @staticmethod
    def _segment_priority(bus: BusModel, priority: int, traffic_class: TrafficClass) -> int:
        """Map a technology-neutral priority onto the segment's scheme.

        The caller passes CAN-style semantics (lower = more urgent, range
        0..2047).  Ethernet wants PCP 0..7 with higher = more urgent, so we
        invert and clamp; deterministic traffic is pinned to PCP 7 (the
        protected TSN class).
        """
        if isinstance(bus, (EthernetBus,)):
            if traffic_class is TrafficClass.DETERMINISTIC:
                return 7
            pcp = 6 - min(priority // 300, 6)
            return max(0, pcp)
        return priority

    def route_buses(self, src: str, dst: str) -> List[BusSpec]:
        """Bus specs along the live route (failed segments excluded)."""
        return [
            self.topology.bus(node)
            for node in self._route(src, dst)
            if node in {b.name for b in self.topology.buses}
        ]

    # -- stats ----------------------------------------------------------------

    def bus(self, name: str) -> BusModel:
        """Access one segment simulator by name."""
        try:
            return self.buses[name]
        except KeyError:
            raise NetworkError(f"unknown bus {name!r}") from None

    def total_frames_delivered(self) -> int:
        return sum(bus.frames_delivered for bus in self.buses.values())
