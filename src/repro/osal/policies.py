"""Scheduling policies for :class:`repro.osal.core.Core`.

The paper's CPU-interference argument (Section 3.1) rests on the
difference between these policy classes:

* **RTOS policies** (:class:`FixedPriorityPolicy`, :class:`EdfPolicy`,
  and the table-driven scheduler in :mod:`repro.osal.timetable`) can
  guarantee deterministic applications their activation windows;
* **general-purpose policies** (:class:`FairSharePolicy`) cannot — they
  share the core equally, so a deterministic task's response time grows
  with the number of co-resident tasks;
* the **mixed policy** (:class:`MixedCriticalityPolicy`) is the dynamic
  platform's answer: deterministic tasks run at fixed priority, while
  non-deterministic tasks are confined to a budget server (design
  decision D1 in DESIGN.md) so they can neither starve the deterministic
  tasks nor be starved entirely.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from .core import SchedulingPolicy
from .task import Criticality, Job


def _effective_priority(job: Job) -> float:
    """Explicit priority if set, else rate-monotonic (shorter period wins)."""
    if job.task.priority is not None:
        return float(job.task.priority)
    return job.task.period


class FixedPriorityPolicy(SchedulingPolicy):
    """Preemptive fixed-priority scheduling (rate-monotonic by default)."""

    preemptive = True
    quantum = None

    def pick(self, ready: List[Job], now: float) -> Optional[Job]:
        if not ready:
            return None
        return min(ready, key=lambda j: (_effective_priority(j), j.release_time, j.job_id))


class EdfPolicy(SchedulingPolicy):
    """Preemptive earliest-deadline-first scheduling."""

    preemptive = True
    quantum = None

    def pick(self, ready: List[Job], now: float) -> Optional[Job]:
        if not ready:
            return None
        return min(ready, key=lambda j: (j.absolute_deadline, j.release_time, j.job_id))


class FifoPolicy(SchedulingPolicy):
    """Non-preemptive run-to-completion in arrival order (bare-metal loop)."""

    preemptive = False
    quantum = None

    def pick(self, ready: List[Job], now: float) -> Optional[Job]:
        if not ready:
            return None
        return min(ready, key=lambda j: (j.release_time, j.job_id))


class FairSharePolicy(SchedulingPolicy):
    """Round-robin time slicing, blind to deadlines and criticality.

    Models a general-purpose OS scheduler: every runnable job gets an equal
    share of the core via a fixed quantum.  Deterministic tasks receive no
    preferential treatment — which is exactly why the paper says only
    non-deterministic applications may run on such an OS.
    """

    preemptive = False  # rotation happens at quantum boundaries only

    def __init__(self, quantum: float = 0.001) -> None:
        if quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        self.quantum = quantum
        self._rotation: List[int] = []  # job ids in round-robin order

    def pick(self, ready: List[Job], now: float) -> Optional[Job]:
        if not ready:
            return None
        known = {j.job_id for j in ready}
        self._rotation = [jid for jid in self._rotation if jid in known]
        for job in sorted(ready, key=lambda j: (j.release_time, j.job_id)):
            if job.job_id not in self._rotation:
                self._rotation.append(job.job_id)
        head = self._rotation[0]
        for job in ready:
            if job.job_id == head:
                return job
        return None  # pragma: no cover - rotation always matches ready

    def on_quantum_expired(self, job: Job, ready: List[Job]) -> None:
        if self._rotation and self._rotation[0] == job.job_id:
            self._rotation.append(self._rotation.pop(0))


class BudgetServer:
    """A deferrable-server budget: ``capacity`` seconds per ``period``.

    Non-deterministic jobs consume the budget while they execute; the
    budget replenishes to full at every period boundary.  This caps NDA
    interference on the core while guaranteeing NDAs a minimum share.
    """

    def __init__(self, capacity: float, period: float) -> None:
        if capacity <= 0 or period <= 0 or capacity > period:
            raise ConfigurationError(
                f"invalid budget server: capacity={capacity}, period={period}"
            )
        self.capacity = capacity
        self.period = period
        self._budget = capacity
        self._last_replenish = 0.0

    def refresh(self, now: float) -> None:
        """Apply any replenishments due by ``now``."""
        if now - self._last_replenish >= self.period:
            periods = int((now - self._last_replenish) / self.period)
            self._last_replenish += periods * self.period
            self._budget = self.capacity

    def available(self, now: float) -> float:
        self.refresh(now)
        return self._budget

    def consume(self, amount: float, now: float) -> None:
        self.refresh(now)
        self._budget = max(0.0, self._budget - amount)

    def next_replenish(self, now: float) -> float:
        self.refresh(now)
        return self._last_replenish + self.period

    @property
    def utilization(self) -> float:
        return self.capacity / self.period


class MixedCriticalityPolicy(SchedulingPolicy):
    """Deterministic tasks at fixed priority; NDAs inside a budget server.

    Selection rule:

    1. any ready deterministic job (rate-monotonic among themselves) wins;
    2. otherwise a non-deterministic job runs round-robin **iff** the
       budget server has budget left; its execution time is charged to
       the budget by the slicing machinery (quantum = min(policy quantum,
       remaining budget), checked at each dispatch).

    With ``server=None``, NDAs run in background (pure idle-time) mode:
    full deterministic protection, but NDAs may starve.
    """

    preemptive = True

    def __init__(
        self,
        server: Optional[BudgetServer] = None,
        nda_quantum: float = 0.001,
    ) -> None:
        self.server = server
        self.nda_quantum = nda_quantum
        self.quantum: Optional[float] = None  # set per dispatch
        self._rr = FairSharePolicy(quantum=nda_quantum)
        self._last_pick_nda = False
        self._last_dispatch_time: Optional[float] = None

    def pick(self, ready: List[Job], now: float) -> Optional[Job]:
        self._charge_previous(now)
        det = [j for j in ready if j.task.criticality is Criticality.DETERMINISTIC]
        if det:
            self.quantum = None
            self._last_pick_nda = False
            self._last_dispatch_time = None
            return min(
                det, key=lambda j: (_effective_priority(j), j.release_time, j.job_id)
            )
        nda = [j for j in ready if j.task.criticality is Criticality.NON_DETERMINISTIC]
        if not nda:
            self._last_pick_nda = False
            self._last_dispatch_time = None
            return None
        if self.server is not None:
            budget = self.server.available(now)
            if budget <= 1e-12:
                self._last_pick_nda = False
                self._last_dispatch_time = None
                return None
            self.quantum = min(self.nda_quantum, budget)
        else:
            self.quantum = self.nda_quantum
        choice = self._rr.pick(nda, now)
        self._last_pick_nda = choice is not None
        self._last_dispatch_time = now if choice is not None else None
        return choice

    def _charge_previous(self, now: float) -> None:
        """Charge the budget for the NDA execution since the last dispatch."""
        if (
            self.server is not None
            and self._last_pick_nda
            and self._last_dispatch_time is not None
        ):
            elapsed = now - self._last_dispatch_time
            if elapsed > 0:
                self.server.consume(elapsed, now)
        self._last_dispatch_time = None
        self._last_pick_nda = False

    def on_quantum_expired(self, job: Job, ready: List[Job]) -> None:
        self._rr.on_quantum_expired(job, ready)

    def next_wakeup(self, now: float) -> Optional[float]:
        if self.server is None:
            return None
        if self.server.available(now) > 1e-12:
            return None
        return self.server.next_replenish(now)
