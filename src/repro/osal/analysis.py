"""Schedulability analysis.

Offline tests used by admission control (Section 3.1 / references [6] and
[19]: "a compositional analysis approach is used to check whether there is
enough resources to satisfy the timing requirements"):

* Liu & Layland utilization bound and exact response-time analysis (RTA)
  for preemptive fixed-priority scheduling;
* the density test and exact utilization condition for EDF;
* a feasibility wrapper for time-triggered tables (delegating to
  :func:`repro.osal.timetable.synthesize_table`).

All tests accept a ``speed_factor`` so the same reference task set can be
checked against any ECU in the catalog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import SchedulingError
from .task import TaskSpec, total_utilization


def scaled_utilization(tasks: List[TaskSpec], speed_factor: float) -> float:
    """Total utilization of ``tasks`` on a core of ``speed_factor``."""
    if speed_factor <= 0:
        raise SchedulingError("speed factor must be positive")
    return total_utilization(tasks) / speed_factor


def liu_layland_bound(n: int) -> float:
    """The rate-monotonic utilization bound for ``n`` tasks."""
    if n <= 0:
        raise SchedulingError("need at least one task")
    return n * (2 ** (1.0 / n) - 1.0)


def rm_priority_order(tasks: List[TaskSpec]) -> List[TaskSpec]:
    """Tasks ordered by effective priority (explicit, else rate-monotonic)."""
    return sorted(
        tasks,
        key=lambda t: (
            t.priority if t.priority is not None else t.period,
            t.name,
        ),
    )


def response_time_analysis(
    tasks: List[TaskSpec],
    speed_factor: float = 1.0,
    *,
    max_iterations: int = 1000,
) -> Dict[str, float]:
    """Exact worst-case response times under preemptive fixed priority.

    The classic recurrence R = C + sum_{hp} ceil(R / T_j) * C_j, iterated
    to fixpoint per task.  Returns ``{task name: response time}``; a task
    whose recurrence exceeds its deadline gets ``float('inf')``.
    """
    ordered = rm_priority_order(tasks)
    results: Dict[str, float] = {}
    for index, task in enumerate(ordered):
        c_i = task.wcet / speed_factor
        higher = ordered[:index]
        response = c_i
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / hp.period) * (hp.wcet / speed_factor)
                for hp in higher
            )
            new_response = c_i + interference
            if new_response > task.effective_deadline + 1e-12:
                response = float("inf")
                break
            if abs(new_response - response) < 1e-12:
                response = new_response
                break
            response = new_response
        else:
            response = float("inf")
        results[task.name] = response
    return results


def is_schedulable_fp(tasks: List[TaskSpec], speed_factor: float = 1.0) -> bool:
    """Exact fixed-priority schedulability via RTA."""
    if not tasks:
        return True
    if scaled_utilization(tasks, speed_factor) > 1.0 + 1e-12:
        return False
    return all(
        math.isfinite(r)
        for r in response_time_analysis(tasks, speed_factor).values()
    )


def is_schedulable_edf(tasks: List[TaskSpec], speed_factor: float = 1.0) -> bool:
    """EDF schedulability.

    Exact (U <= 1) for implicit deadlines; the sufficient density test
    otherwise (sum of wcet/min(D, T) <= 1).
    """
    if not tasks:
        return True
    implicit = all(
        t.deadline is None or t.deadline >= t.period - 1e-12 for t in tasks
    )
    if implicit:
        return scaled_utilization(tasks, speed_factor) <= 1.0 + 1e-12
    density = sum(
        (t.wcet / speed_factor) / min(t.effective_deadline, t.period)
        for t in tasks
    )
    return density <= 1.0 + 1e-12


def is_schedulable_tt(tasks: List[TaskSpec], speed_factor: float = 1.0) -> bool:
    """Feasibility of a time-triggered table for ``tasks``."""
    from .timetable import synthesize_table

    try:
        synthesize_table(tasks, speed_factor)
    except SchedulingError:
        return False
    return True


@dataclass(frozen=True)
class AnalysisReport:
    """Summary produced by :func:`analyse_task_set` for admission decisions."""

    utilization: float
    schedulable_fp: bool
    schedulable_edf: bool
    response_times: Dict[str, float]
    bound_rm: float

    @property
    def schedulable(self) -> bool:
        return self.schedulable_fp or self.schedulable_edf


def analyse_task_set(
    tasks: List[TaskSpec], speed_factor: float = 1.0
) -> AnalysisReport:
    """Run the full analysis battery over one core's task set."""
    if not tasks:
        return AnalysisReport(0.0, True, True, {}, 1.0)
    return AnalysisReport(
        utilization=scaled_utilization(tasks, speed_factor),
        schedulable_fp=is_schedulable_fp(tasks, speed_factor),
        schedulable_edf=is_schedulable_edf(tasks, speed_factor),
        response_times=response_time_analysis(tasks, speed_factor),
        bound_rm=liu_layland_bound(len(tasks)),
    )


def first_fit_partition(
    tasks: List[TaskSpec],
    core_speeds: List[float],
    *,
    test=is_schedulable_fp,
) -> Optional[List[List[TaskSpec]]]:
    """Partition ``tasks`` onto cores first-fit-decreasing by utilization.

    Returns one task list per core, or ``None`` if the set does not fit.
    """
    bins: List[List[TaskSpec]] = [[] for _ in core_speeds]
    for task in sorted(tasks, key=lambda t: t.utilization, reverse=True):
        placed = False
        for i, speed in enumerate(core_speeds):
            if test(bins[i] + [task], speed):
                bins[i].append(task)
                placed = True
                break
        if not placed:
            return None
    return bins
