"""Single-core preemptive CPU model with pluggable scheduling policy.

The :class:`Core` executes :class:`~repro.osal.task.Job` objects under a
:class:`SchedulingPolicy`.  It handles the mechanics every policy shares —
release queues, preemption accounting, quantum expiry, completion tracing —
while the policy only decides *which* ready job runs next.

Multicore ECUs are modelled as one :class:`Core` per hardware core with a
partitioned task assignment (the standard approach in automotive
multicore deployments).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import SchedulingError
from ..sim import PRIORITY_URGENT, ScheduledCall, Simulator
from .task import Job, TaskSpec


class SchedulingPolicy:
    """Chooses the next job to run.  Stateless unless a subclass says so."""

    #: Whether an arriving higher-priority job may preempt a running one.
    preemptive = True

    #: Round-robin time slice; ``None`` disables slicing.
    quantum: Optional[float] = None

    def pick(self, ready: List[Job], now: float) -> Optional[Job]:
        """Return the job that should occupy the core, or ``None``."""
        raise NotImplementedError

    def on_quantum_expired(self, job: Job, ready: List[Job]) -> None:
        """Hook invoked when a sliced job exhausts its quantum."""

    def next_wakeup(self, now: float) -> Optional[float]:
        """If ``pick`` returned ``None`` despite ready jobs, when to retry.

        Lets budget-style policies park the core until replenishment.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


class Core:
    """One processing core of an ECU."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        speed_factor: float,
        policy: SchedulingPolicy,
    ) -> None:
        if speed_factor <= 0:
            raise SchedulingError(f"core {name!r}: speed factor must be positive")
        self.sim = sim
        self.name = name
        self.speed_factor = speed_factor
        self.policy = policy
        self.ready: List[Job] = []
        self.current: Optional[Job] = None
        self._completion: Optional[ScheduledCall] = None
        self._quantum_call: Optional[ScheduledCall] = None
        self._run_started_at = 0.0
        self.completed_jobs: List[Job] = []
        #: optional cap on retained finished jobs.  ``None`` keeps the
        #: full history (analysis and tests read it); long-running worlds
        #: that only need recent jobs set a limit so memory — and
        #: snapshot size — stays constant regardless of run length.
        #: Aggregates (busy_time, response histogram, miss counter) are
        #: unaffected by trimming.
        self.job_history_limit: Optional[int] = None
        self.busy_time = 0.0
        self._completion_listeners: List[Callable[[Job], None]] = []
        self.halted = False
        self._parked_until: Optional[float] = None
        #: fault-injection hook consulted per activation.  ``None`` (the
        #: default) keeps the hot path at one attribute test.  When set,
        #: called as ``hook(task, scaled_wcet)`` and returns the possibly
        #: perturbed ``(scaled_wcet, release_delay)`` pair: an execution
        #: overrun stretches the wcet, release jitter delays the release
        #: while the deadline stays anchored at the nominal activation.
        self.fault_perturb: Optional[
            Callable[[TaskSpec, float], "tuple[float, float]"]
        ] = None
        #: relative clock drift of this core's timer hardware (e.g. 1e-4
        #: means periods run 0.01% long).  Applied by PeriodicSource to
        #: activation instants later than ``clock_drift_since``.
        self.clock_drift = 0.0
        self.clock_drift_since = 0.0
        # cached per-core instruments; no-ops while metrics are disabled
        metrics = sim.metrics
        self._m_releases = metrics.counter("os.releases", core=name)
        self._m_misses = metrics.counter("os.deadline_misses", core=name)
        self._m_preemptions = metrics.counter("os.preemptions", core=name)
        self._m_response = metrics.histogram("os.response", core=name)

    # -- public API ----------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Release ``job`` on this core."""
        if self.halted:
            return
        self.ready.append(job)
        self._m_releases.inc()
        self.sim.trace(
            "os.release",
            core=self.name,
            task=job.task.name,
            job=job.job_id,
            deadline=job.absolute_deadline,
        )
        self._reschedule()

    def submit_task_activation(self, task: TaskSpec, scaled_wcet: float) -> Job:
        """Create and release a job for ``task`` at the current instant."""
        release_delay = 0.0
        perturb = self.fault_perturb
        if perturb is not None:
            scaled_wcet, release_delay = perturb(task, scaled_wcet)
        job = Job(
            task=task,
            release_time=self.sim.now,
            absolute_deadline=self.sim.now + task.effective_deadline,
            remaining=scaled_wcet,
            job_id=self.sim.next_job_id(),
        )
        if release_delay > 0.0:
            # the deadline stays anchored at the nominal activation, so
            # injected release jitter produces genuine deadline pressure
            self.sim.schedule(release_delay, self.submit, job)
        else:
            self.submit(job)
        return job

    def set_clock_drift(self, drift: float) -> None:
        """Set (or clear, with ``0.0``) this core's relative clock drift.

        Drift takes effect from the current instant: activation times
        earlier than now are unaffected, later ones are stretched by
        ``(1 + drift)`` around the onset point.
        """
        self.clock_drift = drift
        self.clock_drift_since = self.sim.now

    def on_completion(self, listener: Callable[[Job], None]) -> None:
        """Register a callback invoked for every finished job."""
        self._completion_listeners.append(listener)

    def halt(self) -> None:
        """Stop the core (ECU failure): drop all work, accept nothing new."""
        self.halted = True
        self._cancel_timers()
        self.current = None
        self.ready.clear()

    def resume(self) -> None:
        """Bring a halted core back (ECU recovery)."""
        self.halted = False
        self._reschedule()

    def cancel_jobs_of(self, task_name: str) -> int:
        """Remove queued/running jobs of one task (app stop). Returns count."""
        removed = [j for j in self.ready if j.task.name == task_name]
        self.ready = [j for j in self.ready if j.task.name != task_name]
        count = len(removed)
        if self.current is not None and self.current.task.name == task_name:
            self._cancel_timers()
            self.current = None
            count += 1
            self._reschedule()
        return count

    @property
    def load_snapshot(self) -> int:
        """Jobs in the system right now (ready + running)."""
        return len(self.ready) + (1 if self.current is not None else 0)

    def utilization_observed(self) -> float:
        """Fraction of elapsed simulated time the core was busy."""
        if self.sim.now == 0:
            return 0.0
        busy = self.busy_time
        if self.current is not None:
            busy += self.sim.now - self._run_started_at
        return busy / self.sim.now

    # -- engine ----------------------------------------------------------------

    def _reschedule(self) -> None:
        if self.halted:
            return
        self._sync_current()
        candidates = list(self.ready)
        if self.current is not None:
            candidates.append(self.current)
        choice = self.policy.pick(candidates, self.sim.now)
        if choice is not None and choice is self.current:
            if self._completion is None and self._quantum_call is None:
                self._start_running(self.current)
            return
        if self.current is not None:
            if not self.policy.preemptive:
                return  # let the running job finish
            self._preempt_current()
        if choice is not None:
            if choice in self.ready:
                self.ready.remove(choice)
            self.current = choice
            self._start_running(choice)
        else:
            self.current = None
            if self.ready:
                wake_at = self.policy.next_wakeup(self.sim.now)
                if wake_at is not None and wake_at > self.sim.now:
                    if self._parked_until is None or wake_at < self._parked_until:
                        self._parked_until = wake_at
                        self.sim.at(wake_at, self._unpark)

    def _sync_current(self) -> None:
        """Charge the running job for time elapsed since dispatch."""
        if self.current is None:
            return
        if self._completion is None and self._quantum_call is None:
            return  # not actually executing (mid-transition)
        elapsed = self.sim.now - self._run_started_at
        if elapsed > 0:
            self.current.remaining = max(0.0, self.current.remaining - elapsed)
            self.busy_time += elapsed
            self._run_started_at = self.sim.now

    def _preempt_current(self) -> None:
        job = self.current
        assert job is not None
        self._cancel_timers()
        if job.start_time is not None and job.start_time == self.sim.now:
            # dispatched and preempted within the same instant: the job
            # never actually executed, so it has not "started" yet
            job.start_time = None
        job.preemptions += 1
        self._m_preemptions.inc()
        self.ready.append(job)
        self.current = None
        self.sim.trace(
            "os.preempt", core=self.name, task=job.task.name, job=job.job_id
        )

    def _start_running(self, job: Job) -> None:
        if job.start_time is None:
            job.start_time = self.sim.now
        self._run_started_at = self.sim.now
        run_for = job.remaining
        quantum = self.policy.quantum
        self._cancel_timers()
        if quantum is not None and quantum < run_for:
            self._quantum_call = self.sim.schedule(quantum, self._quantum_expired)
        else:
            self._completion = self.sim.schedule(run_for, self._complete)

    def _cancel_timers(self) -> None:
        # the core holds the only reference to these handles, so a
        # cancelled timer is provably dead and returns to the event
        # queue's free list once its heap entry surfaces
        if self._completion is not None:
            self._completion.pooled = True
            self._completion.cancel()
            self._completion = None
        if self._quantum_call is not None:
            self._quantum_call.pooled = True
            self._quantum_call.cancel()
            self._quantum_call = None

    def _unpark(self) -> None:
        self._parked_until = None
        if not self.halted and self.current is None:
            self._reschedule()

    def _quantum_expired(self) -> None:
        job = self.current
        if job is None:
            return
        elapsed = self.sim.now - self._run_started_at
        job.remaining = max(0.0, job.remaining - elapsed)
        self.busy_time += elapsed
        if self._quantum_call is not None:
            # currently dispatching and about to be dropped: recycle it
            self._quantum_call.pooled = True
            self._quantum_call = None
        self.current = None
        if job.remaining <= 1e-12:
            self._finish_job(job)
        else:
            self.ready.append(job)
            self.policy.on_quantum_expired(job, self.ready)
        self._reschedule()

    def _complete(self) -> None:
        job = self.current
        if job is None:
            return
        elapsed = self.sim.now - self._run_started_at
        self.busy_time += elapsed
        job.remaining = 0.0
        if self._completion is not None:
            self._completion.pooled = True
            self._completion = None
        self.current = None
        self._finish_job(job)
        self._reschedule()

    def _finish_job(self, job: Job) -> None:
        job.finish_time = self.sim.now
        self.completed_jobs.append(job)
        limit = self.job_history_limit
        if limit is not None and len(self.completed_jobs) > limit:
            del self.completed_jobs[: len(self.completed_jobs) - limit]
        self._m_response.observe(job.response_time)
        if job.missed_deadline:
            self._m_misses.inc()
        self.sim.trace(
            "os.done",
            core=self.name,
            task=job.task.name,
            job=job.job_id,
            response=job.response_time,
            missed=job.missed_deadline,
            jitter=job.start_jitter,
        )
        for listener in self._completion_listeners:
            listener(job)


class PeriodicSource:
    """Releases jobs of a task periodically onto a core.

    Optional activation jitter models imperfect timers; the draw comes from
    the simulator-independent RNG stream supplied by the caller so runs stay
    reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        core: Core,
        task: TaskSpec,
        *,
        scaled_wcet: Optional[float] = None,
        activation_jitter: float = 0.0,
        jitter_draw: Optional[Callable[[], float]] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.core = core
        self.task = task
        self.scaled_wcet = (
            scaled_wcet if scaled_wcet is not None else task.wcet / core.speed_factor
        )
        self.activation_jitter = activation_jitter
        self.jitter_draw = jitter_draw
        self.horizon = horizon
        self.jobs: List[Job] = []
        #: total jobs released, including any trimmed out of ``jobs``
        #: under the core's ``job_history_limit``
        self.released = 0
        # finished jobs folded out of ``jobs`` by trimming; miss_count()
        # and miss_ratio() stay exact, finished_jobs()/response_times()
        # cover only the retained window
        self._folded_finished = 0
        self._folded_misses = 0
        self.stopped = False
        self._activation_index = 0
        self._epoch = sim.now
        self._schedule_activation()

    def stop(self) -> None:
        """Cease releasing new jobs (running/queued jobs are unaffected)."""
        self.stopped = True

    def _schedule_activation(self) -> None:
        # Activation instants are computed as absolute offsets from the
        # epoch (offset + k * period) — no cumulative float drift — and
        # fire at urgent priority so a job released at instant T is visible
        # to any scheduling decision (e.g. a TT slot start) at T.
        when = self._epoch + self.task.offset + self._activation_index * self.task.period
        drift = self.core.clock_drift
        if drift:
            # stretch nominal instants after the drift onset: the local
            # timer ticks (1 + drift) slower/faster than the true clock
            since = self.core.clock_drift_since
            if when > since:
                when = since + (when - since) * (1.0 + drift)
        self.sim.at(max(when, self.sim.now), self._activate, priority=PRIORITY_URGENT)

    def _activate(self) -> None:
        if self.stopped:
            return
        if self.horizon is not None and self.sim.now >= self.horizon:
            return
        extra = 0.0
        if self.activation_jitter > 0 and self.jitter_draw is not None:
            extra = self.activation_jitter * self.jitter_draw()
        if extra > 0:
            self.sim.schedule(extra, self._release_job)
        else:
            self._release_job()
        self._activation_index += 1
        self._schedule_activation()

    def _release_job(self) -> None:
        if self.stopped:
            return
        job = self.core.submit_task_activation(self.task, self.scaled_wcet)
        self.jobs.append(job)
        self.released += 1
        limit = self.core.job_history_limit
        if limit is not None and len(self.jobs) > limit:
            self._trim(limit)

    def _trim(self, limit: int) -> None:
        # fold the oldest *finished* jobs into aggregate counters;
        # unfinished jobs are never dropped, so
        # unfinished_past_deadline() stays exact too
        jobs = self.jobs
        keep_from = 0
        excess = len(jobs) - limit
        while keep_from < excess and jobs[keep_from].finished:
            if jobs[keep_from].missed_deadline:
                self._folded_misses += 1
            self._folded_finished += 1
            keep_from += 1
        if keep_from:
            del jobs[:keep_from]

    # -- metrics ---------------------------------------------------------------

    def finished_jobs(self) -> List[Job]:
        """Finished jobs in the retained window (trimming drops oldest)."""
        return [j for j in self.jobs if j.finished]

    def miss_count(self) -> int:
        """Total deadline misses — exact even when history is trimmed."""
        return self._folded_misses + sum(
            1 for j in self.finished_jobs() if j.missed_deadline
        )

    def unfinished_past_deadline(self, now: float) -> int:
        """Jobs still incomplete although their deadline has passed."""
        return sum(
            1
            for j in self.jobs
            if not j.finished and j.absolute_deadline < now - 1e-12
        )

    def miss_ratio(self, now: Optional[float] = None) -> float:
        """Deadline-miss ratio over all released jobs."""
        if not self.released:
            return 0.0
        misses = self.miss_count()
        if now is not None:
            misses += self.unfinished_past_deadline(now)
        return misses / self.released

    def response_times(self) -> List[float]:
        return [j.response_time for j in self.finished_jobs()]

    def max_response_time(self) -> float:
        times = self.response_times()
        return max(times) if times else 0.0
