"""Time-triggered (table-driven) scheduling.

The paper's preferred mechanism for deterministic applications: "With the
scheduling approaches (time- or priority-based) existent in RTOSs, this can
be achieved" (Section 3.1) — and the schedule-management framework [21]
synthesises exactly such tables in the backend.

Two pieces:

* :func:`synthesize_table` — offline EDF-ordered placement of one
  hyperperiod of jobs into a :class:`TimeTable`; raises
  :class:`~repro.errors.SchedulingError` if the set is infeasible.
* :class:`TimeTriggeredExecutive` — runs a table cyclically inside the
  simulation, serving released jobs in their slots, with optional
  background (idle-time) execution of non-deterministic jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..sim import Simulator
from .task import Criticality, Job, TaskSpec, hyperperiod


@dataclass(frozen=True)
class TableSlot:
    """One table entry: run ``task_name`` at ``offset`` for ``duration``."""

    offset: float
    duration: float
    task_name: str

    def __post_init__(self) -> None:
        if self.offset < 0 or self.duration <= 0:
            raise SchedulingError(
                f"invalid slot for {self.task_name!r}: "
                f"offset={self.offset}, duration={self.duration}"
            )

    @property
    def end(self) -> float:
        return self.offset + self.duration


class TimeTable:
    """A cyclic schedule table over one hyperperiod."""

    def __init__(self, slots: List[TableSlot], cycle: float) -> None:
        if cycle <= 0:
            raise SchedulingError("table cycle must be positive")
        ordered = sorted(slots, key=lambda s: s.offset)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.offset < earlier.end - 1e-12:
                raise SchedulingError(
                    f"overlapping slots: {earlier.task_name!r} "
                    f"[{earlier.offset}, {earlier.end}) and "
                    f"{later.task_name!r} [{later.offset}, {later.end})"
                )
        if ordered and ordered[-1].end > cycle + 1e-12:
            raise SchedulingError("slot extends past the table cycle")
        self.slots = ordered
        self.cycle = cycle

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def utilization(self) -> float:
        """Fraction of the cycle occupied by slots."""
        return sum(s.duration for s in self.slots) / self.cycle

    def slots_for(self, task_name: str) -> List[TableSlot]:
        return [s for s in self.slots if s.task_name == task_name]

    def idle_windows(self) -> List[Tuple[float, float]]:
        """Gaps (start, end) inside the cycle not covered by any slot."""
        windows = []
        cursor = 0.0
        for slot in self.slots:
            if slot.offset > cursor + 1e-12:
                windows.append((cursor, slot.offset))
            cursor = max(cursor, slot.end)
        if cursor < self.cycle - 1e-12:
            windows.append((cursor, self.cycle))
        return windows


def synthesize_table(
    tasks: List[TaskSpec],
    speed_factor: float = 1.0,
    *,
    work_factor_out: Optional[List[int]] = None,
) -> TimeTable:
    """Build a feasible time table for deterministic ``tasks``.

    EDF-ordered placement of every job in one hyperperiod: jobs are sorted
    by absolute deadline and placed at the earliest instant that is both
    after their release and after the previously placed work.  EDF order is
    optimal for independent jobs on one core, so failure to meet a deadline
    here proves infeasibility.

    Args:
        tasks: deterministic task set (offsets honoured).
        speed_factor: hosting core's speed relative to the reference.
        work_factor_out: optional single-element list that receives the
            number of elementary placement steps — used by the C2
            benchmark to compare backend vs on-ECU synthesis cost.

    Raises:
        SchedulingError: if any job would miss its deadline.
    """
    if not tasks:
        raise SchedulingError("cannot synthesize a table for zero tasks")
    non_det = [t.name for t in tasks if t.criticality is not Criticality.DETERMINISTIC]
    if non_det:
        raise SchedulingError(
            f"time tables host deterministic tasks only, got {non_det}"
        )
    cycle = hyperperiod(tasks)
    # all job releases within one hyperperiod
    releases: List[Tuple[float, float, float, str]] = []  # (release, deadline, wcet, name)
    for task in tasks:
        scaled = task.wcet / speed_factor
        k = 0
        while True:
            release = task.offset + k * task.period
            if release >= cycle - 1e-12:
                break
            releases.append(
                (release, release + task.effective_deadline, scaled, task.name)
            )
            k += 1
    releases.sort()
    # simulate preemptive EDF over the hyperperiod, recording execution
    # slices; preemptive EDF is optimal on one core, so any deadline miss
    # here proves infeasibility.
    steps = 0
    slices: List[Tuple[float, float, str]] = []  # (start, duration, name)
    pending: List[List] = []  # [deadline, seq, remaining, name]
    release_index = 0
    now = 0.0
    seq = 0
    while release_index < len(releases) or pending:
        while (
            release_index < len(releases)
            and releases[release_index][0] <= now + 1e-12
        ):
            release, deadline, wcet, name = releases[release_index]
            pending.append([deadline, seq, wcet, name])
            seq += 1
            release_index += 1
        if not pending:
            now = releases[release_index][0]
            continue
        pending.sort()
        job = pending[0]
        next_release = (
            releases[release_index][0]
            if release_index < len(releases)
            else float("inf")
        )
        run = min(job[2], max(next_release - now, 0.0))
        if run <= 0.0:
            run = job[2]
        steps += 1
        slices.append((now, run, job[3]))
        job[2] -= run
        now += run
        if job[2] <= 1e-12:
            pending.pop(0)
            if now > job[0] + 1e-9:
                raise SchedulingError(
                    f"task set infeasible: job of {job[3]!r} cannot meet "
                    f"deadline {job[0]:.6f} (finishes {now:.6f})"
                )
    # merge adjacent slices of the same task into single slots
    slots: List[TableSlot] = []
    for start, duration, name in slices:
        if (
            slots
            and slots[-1].task_name == name
            and abs(slots[-1].end - start) < 1e-12
        ):
            merged = TableSlot(
                offset=slots[-1].offset,
                duration=slots[-1].duration + duration,
                task_name=name,
            )
            slots[-1] = merged
        else:
            slots.append(TableSlot(offset=start, duration=duration, task_name=name))
    if work_factor_out is not None:
        work_factor_out.append(steps + len(releases))
    return TimeTable(slots, cycle)


class TimeTriggeredExecutive:
    """Cyclic executor of a :class:`TimeTable` with background NDA service.

    Deterministic jobs are queued per task and served in that task's slots.
    Released non-deterministic jobs run in the idle windows (background),
    preempted at slot boundaries — full freedom from interference for the
    table, best-effort progress for the rest.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        table: TimeTable,
        *,
        serve_background: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.table = table
        self.serve_background = serve_background
        self._det_queues: Dict[str, List[Job]] = {}
        self._background: List[Job] = []
        self.completed_jobs: List[Job] = []
        self.skipped_slots = 0
        self._running = True
        sim.process(self._loop(), name=f"{name}.tt")

    # -- job intake ------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Queue a released job (deterministic → its slot; else background)."""
        if job.task.criticality is Criticality.DETERMINISTIC:
            if not self.table.slots_for(job.task.name):
                raise SchedulingError(
                    f"{self.name}: no slot in table for task {job.task.name!r}"
                )
            self._det_queues.setdefault(job.task.name, []).append(job)
        else:
            self._background.append(job)
        self.sim.trace(
            "os.release",
            core=self.name,
            task=job.task.name,
            job=job.job_id,
            deadline=job.absolute_deadline,
        )

    def stop(self) -> None:
        """Shut the executive down at the next slot boundary."""
        self._running = False

    # -- engine ------------------------------------------------------------------

    def _loop(self):
        cycle_index = int(self.sim.now // self.table.cycle)
        while self._running:
            base = cycle_index * self.table.cycle
            for slot in self.table.slots:
                slot_start = base + slot.offset
                slot_end = slot_start + slot.duration
                if slot_end <= self.sim.now + 1e-12:
                    continue  # slot entirely in the past (mid-cycle start)
                yield from self._idle_until(slot_start)
                if not self._running:
                    return
                yield from self._serve_slot(slot, slot_end)
            cycle_end = base + self.table.cycle
            yield from self._idle_until(cycle_end)
            cycle_index += 1

    def _serve_slot(self, slot: TableSlot, slot_end: float):
        queue = self._det_queues.get(slot.task_name)
        if not queue and slot_end - self.sim.now > 2e-9:
            # a release scheduled for exactly this instant may sit a float
            # ulp later in the event queue; absorb that with 1 ns of grace
            yield 1e-9
            queue = self._det_queues.get(slot.task_name)
        if not queue:
            self.skipped_slots += 1
            # the slot stays reserved; background may borrow it
            yield from self._idle_until(slot_end)
            return
        job = queue.pop(0)
        if job.start_time is None:
            job.start_time = self.sim.now
        run = min(job.remaining, max(slot_end - self.sim.now, 0.0))
        if run > 0:
            yield run
        job.remaining -= run
        # the boundary grace may have eaten up to 1 ns of the slot; treat a
        # residue of up to 2 ns as completed rather than burning a new slot
        if job.remaining <= 2e-9:
            job.remaining = 0.0
            self._finish(job)
        else:
            # needs another slot instance of this task to complete
            queue.insert(0, job)
        yield from self._idle_until(slot_end)

    def _idle_until(self, when: float):
        """Fill [now, when) with background jobs, in small preemptible steps."""
        while self.sim.now < when - 1e-12:
            if not self.serve_background or not self._background:
                yield when - self.sim.now
                return
            job = self._background[0]
            if job.start_time is None:
                job.start_time = self.sim.now
            run = min(job.remaining, when - self.sim.now)
            yield run
            job.remaining -= run
            if job.remaining <= 1e-12:
                self._background.pop(0)
                self._finish(job)
            else:
                # round-robin: rotate so other background jobs progress
                self._background.append(self._background.pop(0))

    def _finish(self, job: Job) -> None:
        job.finish_time = self.sim.now
        self.completed_jobs.append(job)
        self.sim.trace(
            "os.done",
            core=self.name,
            task=job.task.name,
            job=job.job_id,
            response=job.response_time,
            missed=job.missed_deadline,
            jitter=job.start_jitter,
        )
