"""OS abstraction layer: tasks, schedulers, analysis, memory protection."""

from .analysis import (
    AnalysisReport,
    analyse_task_set,
    first_fit_partition,
    is_schedulable_edf,
    is_schedulable_fp,
    is_schedulable_tt,
    liu_layland_bound,
    response_time_analysis,
    rm_priority_order,
    scaled_utilization,
)
from .core import Core, PeriodicSource, SchedulingPolicy
from .memory import MemoryManager, OsProcess
from .policies import (
    BudgetServer,
    EdfPolicy,
    FairSharePolicy,
    FifoPolicy,
    FixedPriorityPolicy,
    MixedCriticalityPolicy,
)
from .task import Criticality, Job, TaskSpec, hyperperiod, total_utilization
from .timetable import TableSlot, TimeTable, TimeTriggeredExecutive, synthesize_table

__all__ = [
    "AnalysisReport",
    "BudgetServer",
    "Core",
    "Criticality",
    "EdfPolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "FixedPriorityPolicy",
    "Job",
    "MemoryManager",
    "MixedCriticalityPolicy",
    "OsProcess",
    "PeriodicSource",
    "SchedulingPolicy",
    "TableSlot",
    "TaskSpec",
    "TimeTable",
    "TimeTriggeredExecutive",
    "analyse_task_set",
    "first_fit_partition",
    "hyperperiod",
    "is_schedulable_edf",
    "is_schedulable_fp",
    "is_schedulable_tt",
    "liu_layland_bound",
    "response_time_analysis",
    "rm_priority_order",
    "scaled_utilization",
    "synthesize_table",
    "total_utilization",
]
