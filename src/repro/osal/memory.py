"""Process and memory-protection model.

The paper (Section 3.1, Memory): "Freedom of interference between
applications also requires to fully separate their memory. ... OSs with
support for memory separation often require a Memory Management Unit" and
"it is important to define which applications need to run in separate
processes and which can be combined in a single process."

The model captures exactly the failure mode that matters: a wild write by
one application corrupts every application sharing its address space.
With an MMU, each :class:`OsProcess` is its own address space; without
one, all processes on the ECU share a single space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import ConfigurationError
from ..hw.ecu import EcuState


@dataclass
class OsProcess:
    """An OS process hosting one or more application components."""

    name: str
    memory_kib: float
    address_space: int
    residents: Set[str] = field(default_factory=set)
    corrupted: bool = False

    def add_resident(self, app_name: str) -> None:
        self.residents.add(app_name)

    def remove_resident(self, app_name: str) -> None:
        self.residents.discard(app_name)


class MemoryManager:
    """Creates processes and arbitrates address spaces on one ECU."""

    def __init__(self, ecu_state: EcuState) -> None:
        self.ecu_state = ecu_state
        self.has_mmu = ecu_state.spec.has_mmu
        self._processes: Dict[str, OsProcess] = {}
        self._next_space = 0
        self.wild_writes = 0

    def spawn(self, name: str, memory_kib: float, resident: Optional[str] = None) -> OsProcess:
        """Create a process, reserving its memory on the ECU.

        With an MMU every process gets a private address space; without
        one, all processes share space 0.
        """
        if name in self._processes:
            raise ConfigurationError(f"process {name!r} already exists")
        self.ecu_state.allocate_memory(memory_kib)
        if self.has_mmu:
            space = self._next_space
            self._next_space += 1
        else:
            space = 0
        proc = OsProcess(name=name, memory_kib=memory_kib, address_space=space)
        if resident is not None:
            proc.add_resident(resident)
        self._processes[name] = proc
        return proc

    def kill(self, name: str) -> None:
        """Destroy a process and release its memory."""
        proc = self._processes.pop(name, None)
        if proc is None:
            raise ConfigurationError(f"no such process {name!r}")
        self.ecu_state.free_memory(proc.memory_kib)

    def process(self, name: str) -> OsProcess:
        try:
            return self._processes[name]
        except KeyError:
            raise ConfigurationError(f"no such process {name!r}") from None

    @property
    def processes(self) -> List[OsProcess]:
        return list(self._processes.values())

    def wild_write(self, source_process: str) -> List[str]:
        """Simulate a stray pointer write originating in ``source_process``.

        Returns the names of all processes whose memory is corrupted.  With
        an MMU the blast radius is the faulty process alone; without one it
        is every process in the shared address space — the paper's argument
        for making the MMU a hardware requirement of the dynamic platform.
        """
        src = self.process(source_process)
        self.wild_writes += 1
        victims = [
            p for p in self._processes.values() if p.address_space == src.address_space
        ]
        for victim in victims:
            victim.corrupted = True
        return [v.name for v in victims]

    def isolation_groups(self) -> List[Set[str]]:
        """Process names grouped by shared address space."""
        groups: Dict[int, Set[str]] = {}
        for proc in self._processes.values():
            groups.setdefault(proc.address_space, set()).add(proc.name)
        return list(groups.values())

    def memory_in_use_kib(self) -> float:
        return sum(p.memory_kib for p in self._processes.values())
