"""Task and job model.

A :class:`TaskSpec` describes a recurring activity the way the paper's
Section 3.1 characterises deterministic applications: "fixed activation
intervals and computation deadlines".  WCETs are given for the 200 MHz
reference core and scaled by the hosting ECU's speed factor.

A :class:`Job` is a single activation of a task inside the simulation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..errors import ConfigurationError


class Criticality(Enum):
    """Application category from the paper's application model (§3.1)."""

    DETERMINISTIC = "deterministic"
    NON_DETERMINISTIC = "non_deterministic"


@dataclass(frozen=True)
class TaskSpec:
    """A periodic (or sporadic) task.

    Attributes:
        name: unique task identifier.
        period: activation interval in seconds.  For non-deterministic
            tasks this is the *average* inter-arrival time.
        wcet: worst-case execution time on the 200 MHz reference core.
        deadline: relative deadline; defaults to the period.
        offset: release offset of the first activation.
        jitter_tolerance: maximum tolerated start-time jitter for
            deterministic tasks (used by the runtime monitor).
        criticality: deterministic or non-deterministic.
        priority: optional fixed priority (lower number = more important);
            ``None`` lets the scheduler derive one (rate-monotonic).
        memory_kib: RAM footprint of the task's process share.
    """

    name: str
    period: float
    wcet: float
    deadline: Optional[float] = None
    offset: float = 0.0
    jitter_tolerance: float = float("inf")
    criticality: Criticality = Criticality.DETERMINISTIC
    priority: Optional[int] = None
    memory_kib: float = 16.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"task {self.name!r}: period must be positive")
        if self.wcet <= 0:
            raise ConfigurationError(f"task {self.name!r}: wcet must be positive")
        if self.effective_deadline <= 0:
            raise ConfigurationError(f"task {self.name!r}: deadline must be positive")
        if self.wcet > self.period:
            raise ConfigurationError(
                f"task {self.name!r}: wcet {self.wcet} exceeds period {self.period}"
            )
        if self.offset < 0:
            raise ConfigurationError(f"task {self.name!r}: negative offset")

    @property
    def effective_deadline(self) -> float:
        """Relative deadline (defaults to the period)."""
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        """Reference-core utilization ``wcet / period``."""
        return self.wcet / self.period

    def scaled_utilization(self, speed_factor: float) -> float:
        """Utilization on a core ``speed_factor`` times the reference."""
        return self.utilization / speed_factor

    @property
    def is_deterministic(self) -> bool:
        return self.criticality is Criticality.DETERMINISTIC


# Fallback id source for standalone Job construction only.  Production
# paths pass ``job_id=sim.next_job_id()`` explicitly: job ids appear in
# the trace, and a process-global counter would make forked worlds
# diverge from their parent's traces.
_job_ids = itertools.count(1)


@dataclass
class Job:
    """One activation of a task on a specific core.

    ``remaining`` is the *scaled* execution demand still owed, in seconds
    of core time on the hosting ECU.
    """

    task: TaskSpec
    release_time: float
    absolute_deadline: float
    remaining: float
    job_id: int = field(default_factory=lambda: next(_job_ids))
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    preemptions: int = 0

    @property
    def started(self) -> bool:
        return self.start_time is not None

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def response_time(self) -> float:
        if self.finish_time is None:
            raise ConfigurationError(f"job {self.job_id} not finished")
        return self.finish_time - self.release_time

    @property
    def start_jitter(self) -> float:
        """Delay between release and first execution."""
        if self.start_time is None:
            raise ConfigurationError(f"job {self.job_id} never started")
        return self.start_time - self.release_time

    @property
    def missed_deadline(self) -> bool:
        if self.finish_time is None:
            return False
        return self.finish_time > self.absolute_deadline + 1e-12


def hyperperiod(tasks: List[TaskSpec], resolution: float = 1e-6) -> float:
    """Least common multiple of task periods, computed on an integer grid.

    Periods are quantised to ``resolution`` before the LCM; this keeps
    floating-point periods (e.g. 0.005 s) well behaved.
    """
    if not tasks:
        raise ConfigurationError("hyperperiod of empty task set")
    ticks = []
    for task in tasks:
        quantised = round(task.period / resolution)
        if quantised <= 0:
            raise ConfigurationError(
                f"task {task.name!r}: period below resolution {resolution}"
            )
        ticks.append(quantised)
    lcm = ticks[0]
    for t in ticks[1:]:
        lcm = lcm * t // math.gcd(lcm, t)
    return lcm * resolution


def total_utilization(tasks: List[TaskSpec]) -> float:
    """Sum of reference-core utilizations."""
    return sum(t.utilization for t in tasks)
