"""ViL — virtual-vehicle-in-the-loop.

The deepest simulation level below HiL: the controller runs as an
application **on the dynamic platform**, its speed measurement arrives as
an event over the simulated vehicle network, and its actuation command
travels back the same way.  Scheduling latency, middleware segmentation
and bus arbitration are all inside the loop — this is the paper's
"complete software ... tested and validated when integrated on a virtual
control unit" (Section 2.4).
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass
from typing import List, Optional

from ..core.platform import DynamicPlatform
from ..hw.topology import BusSpec, EcuSpec, Topology
from ..hw.ecu import CryptoCapability, OsClass
from ..middleware.endpoint import QOS_CONTROL
from ..middleware.paradigms import EventConsumer, EventProducer
from ..model.applications import AppModel, Asil
from ..osal.task import TaskSpec
from ..security.crypto import TrustStore
from ..security.package import build_package
from ..sim import Simulator
from .controller import CruiseController
from .harness import LoopResult
from .plant import LongitudinalPlant


def vil_topology(bitrate_bps: float = 100e6) -> Topology:
    """Sensor ECU + platform computer + actuator ECU on one segment."""
    topo = Topology("vil")
    topo.add_bus(BusSpec("eth", "ethernet", bitrate_bps, tsn_capable=True))
    for name in ("sensor_ecu", "vecu", "actuator_ecu"):
        topo.add_ecu(EcuSpec(
            name, cpu_mhz=800.0, cores=1, memory_kib=1 << 18,
            flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
            crypto=CryptoCapability.ACCELERATED,
            ports=(("eth0", "ethernet"),),
        ))
        topo.attach(name, "eth0", "eth")
    return topo


SPEED_SERVICE = 0x0A01
ACTUATION_SERVICE = 0x0A02


@dataclass
class VilResult:
    """Outcome of a ViL run, plus the platform-side evidence."""

    loop: LoopResult
    deterministic_misses: int
    sensor_events: int
    actuation_events: int


def run_vil(
    controller: CruiseController,
    plant: Optional[LongitudinalPlant] = None,
    *,
    duration: float = 60.0,
    control_period: float = 0.01,
    control_wcet: float = 0.001,
) -> VilResult:
    """Run the controller as a dynamic-platform app in a network loop.

    Data flow per control period:

    1. the sensor ECU samples the plant and publishes a speed event;
    2. the controller app on the platform computer consumes it, computes
       the next actuation in its scheduled control job;
    3. the actuation event travels to the actuator ECU, which applies it
       to the plant (zero-order hold).
    """
    plant = plant or LongitudinalPlant()
    sim = Simulator()
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(sim, vil_topology(), trust_store=store)

    ctl_app = AppModel(
        name="cruise_ctl",
        tasks=(TaskSpec(
            name="cruise_job", period=control_period, wcet=control_wcet,
        ),),
        asil=Asil.C, memory_kib=64, image_kib=128,
    )
    platform.install(build_package(ctl_app, store, "oem"), "vecu")
    sim.run()
    instance = platform.start_app("cruise_ctl", "vecu")

    sensor_ep = platform.node("sensor_ecu").endpoint
    vecu_ep = platform.node("vecu").endpoint
    actuator_ep = platform.node("actuator_ecu").endpoint

    speed_producer = EventProducer(
        sensor_ep, SPEED_SERVICE, 1, provider_app="speed_sensor"
    )
    actuation_producer = EventProducer(
        vecu_ep, ACTUATION_SERVICE, 1, provider_app="cruise_ctl"
    )

    pending_u = [0.0]
    latest_speed = [0.0]
    counters = {"sensor": 0, "actuation": 0}
    times: List[float] = []
    speeds: List[float] = []

    EventConsumer(
        vecu_ep, SPEED_SERVICE, 1, client_app="cruise_ctl",
        on_data=lambda m: latest_speed.__setitem__(0, m.payload),
    )

    def on_actuation(message) -> None:
        counters["actuation"] += 1
        pending_u[0] = message.payload

    EventConsumer(
        actuator_ep, ACTUATION_SERVICE, 1, client_app="actuator",
        on_data=on_actuation,
    )
    sim.run(until=sim.now + 0.005)  # let subscriptions settle (bounded:
    # the platform app is already releasing periodic jobs)

    def sensor_cycle() -> None:
        # plant advances with the last actuation applied (zero-order hold)
        plant.step(pending_u[0], control_period)
        times.append(sim.now)
        speeds.append(plant.speed_mps)
        counters["sensor"] += 1
        speed_producer.publish(plant.speed_mps, 8, qos=QOS_CONTROL)
        if sim.now + control_period <= duration:
            sim.schedule(control_period, sensor_cycle)

    def control_cycle() -> None:
        # runs aligned with the app's task period: compute + publish
        u = controller.compute(latest_speed[0], control_period)
        actuation_producer.publish(u, 8, qos=QOS_CONTROL)
        if sim.now + control_period <= duration + control_period:
            sim.schedule(control_period, control_cycle)

    start_wall = wallclock.perf_counter()
    sim.schedule(0.0, sensor_cycle)
    sim.schedule(control_period / 2, control_cycle)  # phase-shifted
    sim.run(until=duration + 0.5)
    wall = wallclock.perf_counter() - start_wall

    loop = LoopResult(
        times=times,
        speeds=speeds,
        target=controller.target_mps,
        level="ViL",
        wall_seconds=wall,
        realtime_factor=duration / wall if wall > 0 else float("inf"),
    )
    return VilResult(
        loop=loop,
        deterministic_misses=instance.deadline_misses(),
        sensor_events=counters["sensor"],
        actuation_events=counters["actuation"],
    )
