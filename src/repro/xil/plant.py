"""Plant models for closed-loop XiL testing (Section 2.4).

Fixed-step longitudinal vehicle dynamics — the "control model" half of
the MiL/SiL loop.  Good enough physics for controller verification:
force balance of drive force, aerodynamic drag, rolling resistance and
brake force.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError


@dataclass
class VehicleParameters:
    """Longitudinal dynamics parameters of a mid-size car."""

    mass_kg: float = 1600.0
    drag_area_cda: float = 0.7          # c_d * A in m^2
    air_density: float = 1.2            # kg/m^3
    rolling_coefficient: float = 0.012
    max_drive_force: float = 4500.0     # N
    max_brake_force: float = 12000.0    # N
    gravity: float = 9.81

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ConfigurationError("vehicle mass must be positive")


class LongitudinalPlant:
    """Point-mass longitudinal vehicle model, stepped at fixed dt.

    The control input is ``u`` in [-1, 1]: positive = throttle fraction,
    negative = brake fraction.
    """

    def __init__(
        self,
        params: Optional[VehicleParameters] = None,
        *,
        speed_mps: float = 0.0,
        position_m: float = 0.0,
    ) -> None:
        self.params = params or VehicleParameters()
        self.speed_mps = speed_mps
        self.position_m = position_m
        self.time = 0.0
        self.history: List[tuple] = []

    def step(self, u: float, dt: float) -> float:
        """Advance the plant by ``dt`` seconds; returns the new speed."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        u = min(max(u, -1.0), 1.0)
        p = self.params
        drive = p.max_drive_force * u if u > 0 else 0.0
        brake = p.max_brake_force * (-u) if u < 0 else 0.0
        drag = 0.5 * p.air_density * p.drag_area_cda * self.speed_mps ** 2
        rolling = p.rolling_coefficient * p.mass_kg * p.gravity if self.speed_mps > 0 else 0.0
        accel = (drive - brake - drag - rolling) / p.mass_kg
        self.speed_mps = max(0.0, self.speed_mps + accel * dt)
        self.position_m += self.speed_mps * dt
        self.time += dt
        self.history.append((self.time, self.speed_mps, u))
        return self.speed_mps

    def speeds(self) -> List[float]:
        return [s for _t, s, _u in self.history]


class LeadVehicle:
    """Scripted lead vehicle for ACC scenarios: piecewise-constant speed."""

    def __init__(
        self,
        profile: List[tuple],
        *,
        initial_gap_m: float = 50.0,
    ) -> None:
        """``profile`` is [(until_time, speed_mps), ...], sorted by time."""
        if not profile:
            raise ConfigurationError("lead vehicle needs a speed profile")
        self.profile = sorted(profile)
        self.position_m = initial_gap_m
        self.time = 0.0

    def speed_at(self, time: float) -> float:
        for until, speed in self.profile:
            if time <= until:
                return speed
        return self.profile[-1][1]

    def step(self, dt: float) -> float:
        """Advance; returns the lead vehicle's new position."""
        self.position_m += self.speed_at(self.time) * dt
        self.time += dt
        return self.position_m


@dataclass
class AccScenario:
    """An ACC test scenario: ego plant + scripted lead vehicle."""

    plant: LongitudinalPlant
    lead: LeadVehicle
    collided: bool = False
    min_gap_m: float = field(default=float("inf"))

    def gap(self) -> float:
        return self.lead.position_m - self.plant.position_m

    def step(self, u: float, dt: float) -> None:
        self.plant.step(u, dt)
        self.lead.step(dt)
        gap = self.gap()
        self.min_gap_m = min(self.min_gap_m, gap)
        if gap <= 0.0:
            self.collided = True
