"""XiL (X-in-the-loop) testing framework: plants, controllers, MiL/SiL
harness and fault injection (paper Section 2.4)."""

from .controller import (
    AccController,
    BuggyCruiseController,
    CruiseController,
    PiGains,
)
from .harness import (
    BatteryResult,
    FaultInjector,
    LoopAssertions,
    LoopResult,
    ScenarioSpec,
    ScenarioVerdict,
    XilScenarioJob,
    XilTestCase,
    XilTestSuite,
    run_battery,
    run_mil,
    run_sil,
)
from .plant import AccScenario, LeadVehicle, LongitudinalPlant, VehicleParameters
from .vil import VilResult, run_vil, vil_topology

__all__ = [
    "AccController",
    "AccScenario",
    "BatteryResult",
    "BuggyCruiseController",
    "CruiseController",
    "FaultInjector",
    "LeadVehicle",
    "LongitudinalPlant",
    "LoopAssertions",
    "LoopResult",
    "PiGains",
    "ScenarioSpec",
    "ScenarioVerdict",
    "VehicleParameters",
    "VilResult",
    "XilScenarioJob",
    "XilTestCase",
    "XilTestSuite",
    "run_battery",
    "run_mil",
    "run_sil",
    "run_vil",
    "vil_topology",
]
