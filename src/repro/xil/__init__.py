"""XiL (X-in-the-loop) testing framework: plants, controllers, MiL/SiL
harness and fault injection (paper Section 2.4)."""

from .controller import (
    AccController,
    BuggyCruiseController,
    CruiseController,
    PiGains,
)
from .harness import (
    BatteryResult,
    FaultInjector,
    ForkedSilScenarioJob,
    LoopAssertions,
    LoopResult,
    ScenarioSpec,
    ScenarioVerdict,
    SilLoop,
    XilScenarioJob,
    XilTestCase,
    XilTestSuite,
    build_sil_loop,
    build_sil_warm_snapshot,
    run_battery,
    run_mil,
    run_sil,
    sil_fork_eligible,
)
from .plant import AccScenario, LeadVehicle, LongitudinalPlant, VehicleParameters
from .vil import VilResult, run_vil, vil_topology

__all__ = [
    "AccController",
    "AccScenario",
    "BatteryResult",
    "BuggyCruiseController",
    "CruiseController",
    "FaultInjector",
    "ForkedSilScenarioJob",
    "LeadVehicle",
    "LongitudinalPlant",
    "LoopAssertions",
    "LoopResult",
    "PiGains",
    "ScenarioSpec",
    "ScenarioVerdict",
    "SilLoop",
    "VehicleParameters",
    "VilResult",
    "XilScenarioJob",
    "XilTestCase",
    "XilTestSuite",
    "build_sil_loop",
    "build_sil_warm_snapshot",
    "run_battery",
    "run_mil",
    "run_sil",
    "run_vil",
    "sil_fork_eligible",
    "vil_topology",
]
