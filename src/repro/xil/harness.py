"""XiL test harness (Section 2.4).

Runs controller + plant closed loops at two levels:

* **MiL** (model-in-the-loop) — controller called directly each control
  period; pure numerics, fastest.
* **SiL** (software-in-the-loop) — the controller runs on the simulated
  platform: its control job is scheduled on a :class:`~repro.osal.core.Core`
  and sensor/actuator values cross the simulated network, so scheduling
  delay and communication latency shape the loop exactly as they would on
  a virtual ECU.

Assertions (:class:`LoopAssertions`) check overshoot, settling and
steady-state error; :class:`FaultInjector` perturbs sensors/actuators.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..exec.jobs import JobContext, SimJob
from ..osal.core import Core
from ..osal.policies import FixedPriorityPolicy
from ..osal.task import Job, TaskSpec
from ..sim import Simulator
from .controller import CruiseController, PiGains
from .plant import LongitudinalPlant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import ParallelExecutor


@dataclass
class LoopResult:
    """Outcome of one closed-loop run."""

    times: List[float]
    speeds: List[float]
    target: float
    level: str
    wall_seconds: float
    realtime_factor: float  # simulated seconds per wall second

    def overshoot(self) -> float:
        """Peak speed above target, in m/s."""
        if not self.speeds:
            return 0.0
        return max(0.0, max(self.speeds) - self.target)

    def settling_time(self, band: float = 0.02) -> Optional[float]:
        """First time after which speed stays within +/-band*target."""
        tolerance = band * self.target
        target = self.target
        speeds = self.speeds
        # backward scan for the last out-of-band sample: O(n) and
        # allocation-free, where the naive forward scan re-checks (and
        # re-slices) the suffix for every candidate index
        for i in range(len(speeds) - 1, -1, -1):
            if abs(speeds[i] - target) > tolerance:
                if i + 1 < len(speeds):
                    return self.times[i + 1]
                return None
        return self.times[0] if speeds else None

    def steady_state_error(self, tail_fraction: float = 0.2) -> float:
        n = max(1, int(len(self.speeds) * tail_fraction))
        tail = self.speeds[-n:]
        return abs(sum(tail) / len(tail) - self.target)


@dataclass
class LoopAssertions:
    """Pass/fail criteria for a closed-loop run."""

    max_overshoot: float = 2.0          # m/s
    max_settling_time: Optional[float] = 60.0
    max_steady_state_error: float = 0.5  # m/s

    def check(self, result: LoopResult) -> List[str]:
        """Returns violation messages (empty = pass)."""
        failures = []
        overshoot = result.overshoot()
        if overshoot > self.max_overshoot:
            failures.append(
                f"overshoot {overshoot:.2f} m/s > {self.max_overshoot} m/s"
            )
        if self.max_settling_time is not None:
            settling = result.settling_time()
            if settling is None or settling > self.max_settling_time:
                failures.append(
                    f"did not settle within {self.max_settling_time}s "
                    f"(got {settling})"
                )
        sse = result.steady_state_error()
        if sse > self.max_steady_state_error:
            failures.append(
                f"steady-state error {sse:.2f} m/s > "
                f"{self.max_steady_state_error} m/s"
            )
        return failures


class FaultInjector:
    """Sensor/actuator fault models for robustness testing."""

    def __init__(self) -> None:
        self.sensor_stuck_at: Optional[float] = None
        self.sensor_dropout_window: Optional[tuple] = None
        self.actuator_stuck_at: Optional[float] = None

    def sensor(self, true_speed: float, time: float) -> float:
        if self.sensor_stuck_at is not None:
            return self.sensor_stuck_at
        if self.sensor_dropout_window is not None:
            start, end = self.sensor_dropout_window
            if start <= time <= end:
                return 0.0  # sensor reads zero during dropout
        return true_speed

    def actuator(self, u: float) -> float:
        if self.actuator_stuck_at is not None:
            return self.actuator_stuck_at
        return u


def run_mil(
    controller: CruiseController,
    plant: LongitudinalPlant,
    *,
    duration: float = 60.0,
    control_period: float = 0.01,
    faults: Optional[FaultInjector] = None,
) -> LoopResult:
    """Model-in-the-loop: direct controller/plant coupling."""
    faults = faults or FaultInjector()
    times, speeds = [], []
    steps = int(duration / control_period)
    start = wallclock.perf_counter()
    sim_time = 0.0
    for _ in range(steps):
        measured = faults.sensor(plant.speed_mps, sim_time)
        u = faults.actuator(controller.compute(measured, control_period))
        plant.step(u, control_period)
        sim_time += control_period
        times.append(sim_time)
        speeds.append(plant.speed_mps)
    wall = wallclock.perf_counter() - start
    return LoopResult(
        times=times,
        speeds=speeds,
        target=controller.target_mps,
        level="MiL",
        wall_seconds=wall,
        realtime_factor=duration / wall if wall > 0 else float("inf"),
    )


class SilLoop:
    """One SiL closed loop in snapshot-safe callback style.

    The loop body lives in bound methods (not closures), so a world
    containing a mid-run loop can be snapshotted and forked: each fork
    gets its own plant, controller, sample lists and in-flight map.
    Faults are consulted through ``self.faults`` at each cycle, which is
    what lets a forked healthy warm-up world arm per-scenario faults
    *after* the fork point.
    """

    def __init__(
        self,
        sim: Simulator,
        core: Core,
        controller: CruiseController,
        plant: LongitudinalPlant,
        *,
        duration: float,
        control_period: float,
        control_wcet: float,
        core_speed: float,
        actuation_latency: float,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.core = core
        self.controller = controller
        self.plant = plant
        self.duration = duration
        self.control_period = control_period
        self.control_wcet = control_wcet
        self.core_speed = core_speed
        self.actuation_latency = actuation_latency
        self.faults = faults or FaultInjector()
        self.task = TaskSpec(
            name="ctl", period=control_period, wcet=control_wcet
        )
        self.times: List[float] = []
        self.speeds: List[float] = []
        self.pending_u = 0.0
        self.in_flight: Dict[int, float] = {}  # job_id -> measured speed
        core.on_completion(self._on_done)

    def start(self) -> None:
        self.sim.post(0.0, self._control_cycle)

    def _on_done(self, finished_job: Job) -> None:
        measured = self.in_flight.pop(finished_job.job_id, None)
        if measured is None:
            return
        u = self.faults.actuator(
            self.controller.compute(measured, self.control_period)
        )
        self.sim.post(self.actuation_latency, self._apply_actuation, u)

    def _apply_actuation(self, u: float) -> None:
        self.pending_u = u

    def _control_cycle(self) -> None:
        # plant advanced with the last actuation value (zero-order hold)
        self.plant.step(self.pending_u, self.control_period)
        self.times.append(self.sim.now)
        self.speeds.append(self.plant.speed_mps)
        measured = self.faults.sensor(self.plant.speed_mps, self.sim.now)
        job = Job(
            task=self.task,
            release_time=self.sim.now,
            absolute_deadline=self.sim.now + self.task.effective_deadline,
            remaining=self.control_wcet / self.core_speed,
            job_id=self.sim.next_job_id(),
        )
        self.in_flight[job.job_id] = measured
        self.core.submit(job)
        if self.sim.now + self.control_period <= self.duration + 1e-9:
            self.sim.post(self.control_period, self._control_cycle)

    def result(self, wall_seconds: float) -> LoopResult:
        return LoopResult(
            times=self.times,
            speeds=self.speeds,
            target=self.controller.target_mps,
            level="SiL",
            wall_seconds=wall_seconds,
            realtime_factor=(
                self.duration / wall_seconds
                if wall_seconds > 0 else float("inf")
            ),
        )


def build_sil_loop(
    controller: CruiseController,
    plant: LongitudinalPlant,
    *,
    duration: float = 60.0,
    control_period: float = 0.01,
    control_wcet: float = 0.001,
    core_speed: float = 1.0,
    actuation_latency: float = 0.0005,
    faults: Optional[FaultInjector] = None,
    extra_load: Optional[Callable[[Simulator, Core], None]] = None,
) -> SilLoop:
    """Assemble (but do not run) a SiL loop on a fresh simulator."""
    sim = Simulator()
    core = Core(sim, "vecu", core_speed, FixedPriorityPolicy())
    # verdicts come from the sampled speed trace, never the per-job
    # history; bounding it keeps long warm-ups (and their snapshots)
    # constant-size
    core.job_history_limit = 16
    if extra_load is not None:
        extra_load(sim, core)
    loop = SilLoop(
        sim, core, controller, plant,
        duration=duration,
        control_period=control_period,
        control_wcet=control_wcet,
        core_speed=core_speed,
        actuation_latency=actuation_latency,
        faults=faults,
    )
    sim.adopt("sil", loop)
    loop.start()
    return loop


def run_sil(
    controller: CruiseController,
    plant: LongitudinalPlant,
    *,
    duration: float = 60.0,
    control_period: float = 0.01,
    control_wcet: float = 0.001,
    core_speed: float = 1.0,
    actuation_latency: float = 0.0005,
    faults: Optional[FaultInjector] = None,
    extra_load: Optional[Callable[[Simulator, Core], None]] = None,
) -> LoopResult:
    """Software-in-the-loop: the control task is *scheduled* on a core.

    The plant advances every control period; the controller output is
    computed inside a scheduled job and applied after ``actuation_latency``
    — so scheduler preemption and latency are part of the loop.
    """
    loop = build_sil_loop(
        controller, plant,
        duration=duration,
        control_period=control_period,
        control_wcet=control_wcet,
        core_speed=core_speed,
        actuation_latency=actuation_latency,
        faults=faults,
        extra_load=extra_load,
    )
    start = wallclock.perf_counter()
    loop.sim.run(until=duration + 0.1)
    wall = wallclock.perf_counter() - start
    return loop.result(wall)


@dataclass
class XilTestCase:
    """One named test: build a loop, run it, check assertions."""

    name: str
    build_controller: Callable[[], CruiseController]
    assertions: LoopAssertions = field(default_factory=LoopAssertions)
    level: str = "MiL"
    duration: float = 60.0
    initial_speed: float = 0.0
    faults: Optional[FaultInjector] = None

    def run(self) -> tuple:
        """Returns (passed, failure list, LoopResult)."""
        controller = self.build_controller()
        plant = LongitudinalPlant(speed_mps=self.initial_speed)
        if self.level == "MiL":
            result = run_mil(
                controller, plant, duration=self.duration, faults=self.faults
            )
        elif self.level == "SiL":
            result = run_sil(
                controller, plant, duration=self.duration, faults=self.faults
            )
        else:
            raise ConfigurationError(f"unknown XiL level {self.level!r}")
        failures = self.assertions.check(result)
        return (not failures, failures, result)


class XilTestSuite:
    """Runs a list of test cases and tabulates pass/fail."""

    def __init__(self, cases: List[XilTestCase]) -> None:
        self.cases = cases
        self.results: List[tuple] = []

    def run(self) -> int:
        """Execute all cases; returns the number of failures."""
        self.results = []
        failures = 0
        for case in self.cases:
            passed, messages, result = case.run()
            self.results.append((case.name, passed, messages, result))
            if not passed:
                failures += 1
        return failures

    def report(self) -> str:
        lines = []
        for name, passed, messages, result in self.results:
            status = "PASS" if passed else "FAIL"
            lines.append(f"[{status}] {name} ({result.level})")
            for message in messages:
                lines.append(f"    - {message}")
        return "\n".join(lines)


# -- parallel scenario batteries (repro.exec fan-out site) ---------------


@dataclass(frozen=True)
class ScenarioSpec:
    """Picklable description of one closed-loop scenario.

    Unlike :class:`XilTestCase` (which carries a live controller factory
    callable), a spec holds only plain data — controller gains, loop
    level, fault parameters, assertion limits — so it can travel to a
    worker process and rebuild the scenario there.
    """

    name: str
    level: str = "MiL"
    duration: float = 30.0
    target_mps: float = 25.0
    initial_speed: float = 0.0
    kp: float = 0.12
    ki: float = 0.02
    # fault injection (None = healthy)
    sensor_stuck_at: Optional[float] = None
    sensor_dropout_window: Optional[Tuple[float, float]] = None
    actuator_stuck_at: Optional[float] = None
    # assertion limits
    max_overshoot: float = 2.0
    max_settling_time: Optional[float] = 60.0
    max_steady_state_error: float = 0.5

    def build_faults(self) -> Optional[FaultInjector]:
        """Materialise the spec's fault injector (``None`` = healthy)."""
        if (self.sensor_stuck_at is None
                and self.sensor_dropout_window is None
                and self.actuator_stuck_at is None):
            return None
        faults = FaultInjector()
        faults.sensor_stuck_at = self.sensor_stuck_at
        faults.sensor_dropout_window = self.sensor_dropout_window
        faults.actuator_stuck_at = self.actuator_stuck_at
        return faults

    def build_assertions(self) -> LoopAssertions:
        return LoopAssertions(
            max_overshoot=self.max_overshoot,
            max_settling_time=self.max_settling_time,
            max_steady_state_error=self.max_steady_state_error,
        )

    def build_case(self) -> XilTestCase:
        """Materialise the runnable test case (in whatever process)."""
        gains = PiGains(kp=self.kp, ki=self.ki)
        target = self.target_mps
        return XilTestCase(
            name=self.name,
            build_controller=lambda: CruiseController(target, gains),
            assertions=self.build_assertions(),
            level=self.level,
            duration=self.duration,
            initial_speed=self.initial_speed,
            faults=self.build_faults(),
        )

    def loop_key(self) -> Tuple:
        """Scenarios with equal keys share a healthy warm-up world."""
        return (
            self.level, self.duration, self.target_mps,
            self.initial_speed, self.kp, self.ki,
        )


@dataclass(frozen=True)
class ScenarioVerdict:
    """Picklable pass/fail outcome of one scenario."""

    name: str
    level: str
    passed: bool
    failures: Tuple[str, ...]
    overshoot: float
    settling_time: Optional[float]
    steady_state_error: float
    samples: int


def _scenario_verdict(
    spec: ScenarioSpec,
    passed: bool,
    failures: List[str],
    result: LoopResult,
    ctx: JobContext,
) -> ScenarioVerdict:
    verdicts = ctx.metrics.counter(
        "xil.verdicts", outcome="pass" if passed else "fail"
    )
    verdicts.inc()
    overshoot_hist = ctx.metrics.histogram("xil.overshoot_mps")
    overshoot_hist.observe(result.overshoot())
    return ScenarioVerdict(
        name=spec.name,
        level=result.level,
        passed=passed,
        failures=tuple(failures),
        overshoot=result.overshoot(),
        settling_time=result.settling_time(),
        steady_state_error=result.steady_state_error(),
        samples=len(result.speeds),
    )


class XilScenarioJob(SimJob):
    """Runs one :class:`ScenarioSpec` closed loop in a worker process."""

    def __init__(self, job_id: str, spec: ScenarioSpec) -> None:
        self.job_id = job_id
        self.spec = spec

    def run(self, ctx: JobContext) -> ScenarioVerdict:
        passed, failures, result = self.spec.build_case().run()
        return _scenario_verdict(self.spec, passed, failures, result, ctx)


#: Fork-eligible SiL scenarios warm up for this fraction of their
#: duration before the per-scenario fault phase begins.
SIL_WARMUP_FRACTION = 0.5


def sil_fork_eligible(spec: ScenarioSpec, warmup: float) -> bool:
    """Can this scenario continue from a healthy warm-up world?

    True when the scenario is SiL and behaves identically to the healthy
    loop up to ``warmup``: stuck-at faults act from t=0 (never eligible),
    dropout windows qualify when they open strictly after the fork point.
    """
    if spec.level != "SiL":
        return False
    if spec.sensor_stuck_at is not None or spec.actuator_stuck_at is not None:
        return False
    window = spec.sensor_dropout_window
    return window is None or window[0] > warmup


def build_sil_warm_snapshot(spec: ScenarioSpec, warmup: float):
    """Run the healthy loop for ``spec``'s config to ``warmup``, snapshot."""
    controller = CruiseController(
        spec.target_mps, PiGains(kp=spec.kp, ki=spec.ki)
    )
    plant = LongitudinalPlant(speed_mps=spec.initial_speed)
    loop = build_sil_loop(controller, plant, duration=spec.duration)
    loop.sim.run(until=warmup)
    return loop.sim.snapshot()


class ForkedSilScenarioJob(SimJob):
    """One SiL scenario continued from a shared healthy warm-up world.

    ``ctx.shared`` carries a dict of warm :class:`~repro.sim.SimSnapshot`
    objects keyed by loop config; the job restores its config's world,
    arms the scenario's faults on the restored loop and runs only the
    post-warm-up half.  Results are bit-identical to the rebuild path
    because the scenario is healthy before the fork point by
    construction (:func:`sil_fork_eligible`).
    """

    def __init__(self, job_id: str, spec: ScenarioSpec, key: Tuple) -> None:
        self.job_id = job_id
        self.spec = spec
        self.key = key

    def run(self, ctx: JobContext) -> ScenarioVerdict:
        snapshots = ctx.shared
        snap = snapshots.get(self.key) if snapshots else None
        if snap is None:
            raise ConfigurationError(
                f"forked SiL job {self.job_id} is missing its warm snapshot"
            )
        sim = snap.restore()
        loop: SilLoop = sim.world["sil"]
        faults = self.spec.build_faults()
        if faults is not None:
            loop.faults = faults
        start = wallclock.perf_counter()
        sim.run(until=loop.duration + 0.1)
        wall = wallclock.perf_counter() - start
        result = loop.result(wall)
        failures = self.spec.build_assertions().check(result)
        return _scenario_verdict(
            self.spec, not failures, failures, result, ctx
        )


@dataclass
class BatteryResult:
    """Aggregate outcome of one scenario battery."""

    verdicts: List[ScenarioVerdict]
    digest: Dict

    @property
    def failures(self) -> int:
        return sum(1 for v in self.verdicts if not v.passed)

    def report(self) -> str:
        lines = []
        for verdict in self.verdicts:
            status = "PASS" if verdict.passed else "FAIL"
            lines.append(f"[{status}] {verdict.name} ({verdict.level})")
            for message in verdict.failures:
                lines.append(f"    - {message}")
        return "\n".join(lines)


def run_battery(
    scenarios: List[ScenarioSpec],
    *,
    executor: Optional["ParallelExecutor"] = None,
    master_seed: Optional[int] = None,
    fork: bool = True,
    warmup_fraction: float = SIL_WARMUP_FRACTION,
) -> BatteryResult:
    """Run a scenario battery, serially or fanned out over an executor.

    Scenario order is preserved in the verdict list regardless of which
    worker finished first; closed loops are deterministic given their
    spec, so parallel verdicts equal serial ones exactly.  Pass a warm
    executor (reused across batteries) for fan-out; ``executor=None``
    runs inline through the shared serial executor.

    With ``fork=True`` (the default), SiL scenarios whose faults start
    after the warm-up point share one healthy warm-up world per loop
    config: it is built once, snapshotted, shipped per worker, and each
    scenario forks it and runs only the post-warm-up half.  Ineligible
    scenarios (MiL, stuck-at faults, early dropout windows) run the
    rebuild path unchanged, so verdicts are identical either way.
    """
    if not scenarios:
        raise ConfigurationError("battery needs at least one scenario")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scenario names in battery: {names}")
    jobs: List[SimJob] = []
    context = None
    if fork:
        snapshots: Dict[Tuple, object] = {}
        for s in scenarios:
            warmup = s.duration * warmup_fraction
            if sil_fork_eligible(s, warmup):
                key = s.loop_key()
                if key not in snapshots:
                    snapshots[key] = build_sil_warm_snapshot(s, warmup)
                jobs.append(ForkedSilScenarioJob(f"xil.{s.name}", s, key))
            else:
                jobs.append(XilScenarioJob(f"xil.{s.name}", s))
        if snapshots:
            context = snapshots
    else:
        jobs = [XilScenarioJob(f"xil.{s.name}", s) for s in scenarios]
    if executor is None:
        from ..exec.pool import get_inline_executor

        seed = 0 if master_seed is None else master_seed
        report = get_inline_executor().run_jobs(
            jobs, master_seed=seed, context=context
        )
    else:
        report = executor.run_jobs(
            jobs, master_seed=master_seed, context=context
        )
    failed = [r for r in report.results if not r.ok]
    if failed:
        detail = "; ".join(f"{r.job_id}: {r.error}" for r in failed[:5])
        raise ConfigurationError(
            f"{len(failed)}/{len(jobs)} battery scenarios crashed ({detail})"
        )
    return BatteryResult(verdicts=report.values, digest=report.merged_digest())
