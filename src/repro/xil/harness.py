"""XiL test harness (Section 2.4).

Runs controller + plant closed loops at two levels:

* **MiL** (model-in-the-loop) — controller called directly each control
  period; pure numerics, fastest.
* **SiL** (software-in-the-loop) — the controller runs on the simulated
  platform: its control job is scheduled on a :class:`~repro.osal.core.Core`
  and sensor/actuator values cross the simulated network, so scheduling
  delay and communication latency shape the loop exactly as they would on
  a virtual ECU.

Assertions (:class:`LoopAssertions`) check overshoot, settling and
steady-state error; :class:`FaultInjector` perturbs sensors/actuators.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..exec.jobs import JobContext, SimJob
from ..osal.core import Core
from ..osal.policies import FixedPriorityPolicy
from ..osal.task import Job, TaskSpec
from ..sim import Simulator
from .controller import CruiseController, PiGains
from .plant import LongitudinalPlant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import ParallelExecutor


@dataclass
class LoopResult:
    """Outcome of one closed-loop run."""

    times: List[float]
    speeds: List[float]
    target: float
    level: str
    wall_seconds: float
    realtime_factor: float  # simulated seconds per wall second

    def overshoot(self) -> float:
        """Peak speed above target, in m/s."""
        if not self.speeds:
            return 0.0
        return max(0.0, max(self.speeds) - self.target)

    def settling_time(self, band: float = 0.02) -> Optional[float]:
        """First time after which speed stays within +/-band*target."""
        tolerance = band * self.target
        for i in range(len(self.speeds)):
            if all(
                abs(s - self.target) <= tolerance for s in self.speeds[i:]
            ):
                return self.times[i]
        return None

    def steady_state_error(self, tail_fraction: float = 0.2) -> float:
        n = max(1, int(len(self.speeds) * tail_fraction))
        tail = self.speeds[-n:]
        return abs(sum(tail) / len(tail) - self.target)


@dataclass
class LoopAssertions:
    """Pass/fail criteria for a closed-loop run."""

    max_overshoot: float = 2.0          # m/s
    max_settling_time: Optional[float] = 60.0
    max_steady_state_error: float = 0.5  # m/s

    def check(self, result: LoopResult) -> List[str]:
        """Returns violation messages (empty = pass)."""
        failures = []
        overshoot = result.overshoot()
        if overshoot > self.max_overshoot:
            failures.append(
                f"overshoot {overshoot:.2f} m/s > {self.max_overshoot} m/s"
            )
        if self.max_settling_time is not None:
            settling = result.settling_time()
            if settling is None or settling > self.max_settling_time:
                failures.append(
                    f"did not settle within {self.max_settling_time}s "
                    f"(got {settling})"
                )
        sse = result.steady_state_error()
        if sse > self.max_steady_state_error:
            failures.append(
                f"steady-state error {sse:.2f} m/s > "
                f"{self.max_steady_state_error} m/s"
            )
        return failures


class FaultInjector:
    """Sensor/actuator fault models for robustness testing."""

    def __init__(self) -> None:
        self.sensor_stuck_at: Optional[float] = None
        self.sensor_dropout_window: Optional[tuple] = None
        self.actuator_stuck_at: Optional[float] = None

    def sensor(self, true_speed: float, time: float) -> float:
        if self.sensor_stuck_at is not None:
            return self.sensor_stuck_at
        if self.sensor_dropout_window is not None:
            start, end = self.sensor_dropout_window
            if start <= time <= end:
                return 0.0  # sensor reads zero during dropout
        return true_speed

    def actuator(self, u: float) -> float:
        if self.actuator_stuck_at is not None:
            return self.actuator_stuck_at
        return u


def run_mil(
    controller: CruiseController,
    plant: LongitudinalPlant,
    *,
    duration: float = 60.0,
    control_period: float = 0.01,
    faults: Optional[FaultInjector] = None,
) -> LoopResult:
    """Model-in-the-loop: direct controller/plant coupling."""
    faults = faults or FaultInjector()
    times, speeds = [], []
    steps = int(duration / control_period)
    start = wallclock.perf_counter()
    sim_time = 0.0
    for _ in range(steps):
        measured = faults.sensor(plant.speed_mps, sim_time)
        u = faults.actuator(controller.compute(measured, control_period))
        plant.step(u, control_period)
        sim_time += control_period
        times.append(sim_time)
        speeds.append(plant.speed_mps)
    wall = wallclock.perf_counter() - start
    return LoopResult(
        times=times,
        speeds=speeds,
        target=controller.target_mps,
        level="MiL",
        wall_seconds=wall,
        realtime_factor=duration / wall if wall > 0 else float("inf"),
    )


def run_sil(
    controller: CruiseController,
    plant: LongitudinalPlant,
    *,
    duration: float = 60.0,
    control_period: float = 0.01,
    control_wcet: float = 0.001,
    core_speed: float = 1.0,
    actuation_latency: float = 0.0005,
    faults: Optional[FaultInjector] = None,
    extra_load: Optional[Callable[[Simulator, Core], None]] = None,
) -> LoopResult:
    """Software-in-the-loop: the control task is *scheduled* on a core.

    The plant advances every control period; the controller output is
    computed inside a scheduled job and applied after ``actuation_latency``
    — so scheduler preemption and latency are part of the loop.
    """
    faults = faults or FaultInjector()
    sim = Simulator()
    core = Core(sim, "vecu", core_speed, FixedPriorityPolicy())
    if extra_load is not None:
        extra_load(sim, core)
    task = TaskSpec(name="ctl", period=control_period, wcet=control_wcet)
    times: List[float] = []
    speeds: List[float] = []
    pending_u = [0.0]
    in_flight: dict = {}  # job_id -> measured speed

    def on_done(finished_job: Job) -> None:
        measured = in_flight.pop(finished_job.job_id, None)
        if measured is None:
            return
        u = faults.actuator(controller.compute(measured, control_period))
        sim.schedule(actuation_latency, lambda: pending_u.__setitem__(0, u))

    core.on_completion(on_done)

    def control_cycle() -> None:
        # plant advanced with the last actuation value (zero-order hold)
        plant.step(pending_u[0], control_period)
        times.append(sim.now)
        speeds.append(plant.speed_mps)
        measured = faults.sensor(plant.speed_mps, sim.now)
        job = Job(
            task=task,
            release_time=sim.now,
            absolute_deadline=sim.now + task.effective_deadline,
            remaining=control_wcet / core_speed,
        )
        in_flight[job.job_id] = measured
        core.submit(job)
        if sim.now + control_period <= duration + 1e-9:
            sim.schedule(control_period, control_cycle)

    start = wallclock.perf_counter()
    sim.schedule(0.0, control_cycle)
    sim.run(until=duration + 0.1)
    wall = wallclock.perf_counter() - start
    return LoopResult(
        times=times,
        speeds=speeds,
        target=controller.target_mps,
        level="SiL",
        wall_seconds=wall,
        realtime_factor=duration / wall if wall > 0 else float("inf"),
    )


@dataclass
class XilTestCase:
    """One named test: build a loop, run it, check assertions."""

    name: str
    build_controller: Callable[[], CruiseController]
    assertions: LoopAssertions = field(default_factory=LoopAssertions)
    level: str = "MiL"
    duration: float = 60.0
    initial_speed: float = 0.0
    faults: Optional[FaultInjector] = None

    def run(self) -> tuple:
        """Returns (passed, failure list, LoopResult)."""
        controller = self.build_controller()
        plant = LongitudinalPlant(speed_mps=self.initial_speed)
        if self.level == "MiL":
            result = run_mil(
                controller, plant, duration=self.duration, faults=self.faults
            )
        elif self.level == "SiL":
            result = run_sil(
                controller, plant, duration=self.duration, faults=self.faults
            )
        else:
            raise ConfigurationError(f"unknown XiL level {self.level!r}")
        failures = self.assertions.check(result)
        return (not failures, failures, result)


class XilTestSuite:
    """Runs a list of test cases and tabulates pass/fail."""

    def __init__(self, cases: List[XilTestCase]) -> None:
        self.cases = cases
        self.results: List[tuple] = []

    def run(self) -> int:
        """Execute all cases; returns the number of failures."""
        self.results = []
        failures = 0
        for case in self.cases:
            passed, messages, result = case.run()
            self.results.append((case.name, passed, messages, result))
            if not passed:
                failures += 1
        return failures

    def report(self) -> str:
        lines = []
        for name, passed, messages, result in self.results:
            status = "PASS" if passed else "FAIL"
            lines.append(f"[{status}] {name} ({result.level})")
            for message in messages:
                lines.append(f"    - {message}")
        return "\n".join(lines)


# -- parallel scenario batteries (repro.exec fan-out site) ---------------


@dataclass(frozen=True)
class ScenarioSpec:
    """Picklable description of one closed-loop scenario.

    Unlike :class:`XilTestCase` (which carries a live controller factory
    callable), a spec holds only plain data — controller gains, loop
    level, fault parameters, assertion limits — so it can travel to a
    worker process and rebuild the scenario there.
    """

    name: str
    level: str = "MiL"
    duration: float = 30.0
    target_mps: float = 25.0
    initial_speed: float = 0.0
    kp: float = 0.12
    ki: float = 0.02
    # fault injection (None = healthy)
    sensor_stuck_at: Optional[float] = None
    sensor_dropout_window: Optional[Tuple[float, float]] = None
    actuator_stuck_at: Optional[float] = None
    # assertion limits
    max_overshoot: float = 2.0
    max_settling_time: Optional[float] = 60.0
    max_steady_state_error: float = 0.5

    def build_case(self) -> XilTestCase:
        """Materialise the runnable test case (in whatever process)."""
        faults: Optional[FaultInjector] = None
        if (self.sensor_stuck_at is not None
                or self.sensor_dropout_window is not None
                or self.actuator_stuck_at is not None):
            faults = FaultInjector()
            faults.sensor_stuck_at = self.sensor_stuck_at
            faults.sensor_dropout_window = self.sensor_dropout_window
            faults.actuator_stuck_at = self.actuator_stuck_at
        gains = PiGains(kp=self.kp, ki=self.ki)
        target = self.target_mps
        return XilTestCase(
            name=self.name,
            build_controller=lambda: CruiseController(target, gains),
            assertions=LoopAssertions(
                max_overshoot=self.max_overshoot,
                max_settling_time=self.max_settling_time,
                max_steady_state_error=self.max_steady_state_error,
            ),
            level=self.level,
            duration=self.duration,
            initial_speed=self.initial_speed,
            faults=faults,
        )


@dataclass(frozen=True)
class ScenarioVerdict:
    """Picklable pass/fail outcome of one scenario."""

    name: str
    level: str
    passed: bool
    failures: Tuple[str, ...]
    overshoot: float
    settling_time: Optional[float]
    steady_state_error: float
    samples: int


class XilScenarioJob(SimJob):
    """Runs one :class:`ScenarioSpec` closed loop in a worker process."""

    def __init__(self, job_id: str, spec: ScenarioSpec) -> None:
        self.job_id = job_id
        self.spec = spec

    def run(self, ctx: JobContext) -> ScenarioVerdict:
        passed, failures, result = self.spec.build_case().run()
        verdicts = ctx.metrics.counter(
            "xil.verdicts", outcome="pass" if passed else "fail"
        )
        verdicts.inc()
        overshoot_hist = ctx.metrics.histogram("xil.overshoot_mps")
        overshoot_hist.observe(result.overshoot())
        return ScenarioVerdict(
            name=self.spec.name,
            level=result.level,
            passed=passed,
            failures=tuple(failures),
            overshoot=result.overshoot(),
            settling_time=result.settling_time(),
            steady_state_error=result.steady_state_error(),
            samples=len(result.speeds),
        )


@dataclass
class BatteryResult:
    """Aggregate outcome of one scenario battery."""

    verdicts: List[ScenarioVerdict]
    digest: Dict

    @property
    def failures(self) -> int:
        return sum(1 for v in self.verdicts if not v.passed)

    def report(self) -> str:
        lines = []
        for verdict in self.verdicts:
            status = "PASS" if verdict.passed else "FAIL"
            lines.append(f"[{status}] {verdict.name} ({verdict.level})")
            for message in verdict.failures:
                lines.append(f"    - {message}")
        return "\n".join(lines)


def run_battery(
    scenarios: List[ScenarioSpec],
    *,
    executor: Optional["ParallelExecutor"] = None,
    master_seed: Optional[int] = None,
) -> BatteryResult:
    """Run a scenario battery, serially or fanned out over an executor.

    Scenario order is preserved in the verdict list regardless of which
    worker finished first; closed loops are deterministic given their
    spec, so parallel verdicts equal serial ones exactly.  Pass a warm
    executor (reused across batteries) for fan-out; ``executor=None``
    runs inline through the shared serial executor.
    """
    if not scenarios:
        raise ConfigurationError("battery needs at least one scenario")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scenario names in battery: {names}")
    jobs = [XilScenarioJob(f"xil.{s.name}", s) for s in scenarios]
    if executor is None:
        from ..exec.pool import get_inline_executor

        seed = 0 if master_seed is None else master_seed
        report = get_inline_executor().run_jobs(jobs, master_seed=seed)
    else:
        report = executor.run_jobs(jobs, master_seed=master_seed)
    failed = [r for r in report.results if not r.ok]
    if failed:
        detail = "; ".join(f"{r.job_id}: {r.error}" for r in failed[:5])
        raise ConfigurationError(
            f"{len(failed)}/{len(jobs)} battery scenarios crashed ({detail})"
        )
    return BatteryResult(verdicts=report.values, digest=report.merged_digest())
