"""Controllers under test: cruise control and ACC, plus buggy variants.

The buggy variants exist for benchmark C11 — SiL testing must find them
long before any hardware exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError


@dataclass
class PiGains:
    kp: float = 0.12
    ki: float = 0.02
    output_low: float = -1.0
    output_high: float = 1.0


class CruiseController:
    """PI cruise controller with anti-windup clamping."""

    def __init__(self, target_mps: float, gains: Optional[PiGains] = None) -> None:
        if target_mps < 0:
            raise ConfigurationError("target speed cannot be negative")
        self.target_mps = target_mps
        self.gains = gains or PiGains()
        self.integral = 0.0

    def reset(self) -> None:
        self.integral = 0.0

    def compute(self, speed_mps: float, dt: float) -> float:
        """One control step: returns actuation u in [-1, 1]."""
        g = self.gains
        error = self.target_mps - speed_mps
        candidate = self.integral + error * dt
        u_unclamped = g.kp * error + g.ki * candidate
        u = min(max(u_unclamped, g.output_low), g.output_high)
        if u == u_unclamped:  # anti-windup: only integrate when unsaturated
            self.integral = candidate
        return u

    def state_snapshot(self) -> dict:
        """Internal state for update synchronisation experiments."""
        return {"integral": self.integral, "target": self.target_mps}

    def adopt_state(self, snapshot: dict) -> None:
        self.integral = snapshot.get("integral", 0.0)


class BuggyCruiseController(CruiseController):
    """Cruise controller with an injected defect, selectable by kind.

    * ``sign`` — the classic inverted-error bug; the loop diverges.
    * ``windup`` — no anti-windup; large overshoot after saturation.
    * ``gain`` — the integral gain was dropped (ki=0); the loop parks
      below the target with a permanent steady-state error.
    """

    KINDS = ("sign", "windup", "gain")

    def __init__(self, target_mps: float, kind: str = "sign") -> None:
        super().__init__(target_mps)
        if kind not in self.KINDS:
            raise ConfigurationError(f"unknown bug kind {kind!r}")
        self.kind = kind
        if kind == "gain":
            self.gains = PiGains(kp=0.12, ki=0.0)

    def compute(self, speed_mps: float, dt: float) -> float:
        g = self.gains
        error = self.target_mps - speed_mps
        if self.kind == "sign":
            # inverted error: the loop pushes away from the target
            error = -error
            candidate = self.integral + error * dt
            u_unclamped = g.kp * error + g.ki * candidate
            u = min(max(u_unclamped, g.output_low), g.output_high)
            if u == u_unclamped:
                self.integral = candidate
            return u
        if self.kind == "windup":
            self.integral += error * dt  # integrates even when saturated
            u = g.kp * error + g.ki * self.integral
            return min(max(u, g.output_low), g.output_high)
        return super().compute(speed_mps, dt)


class AccController:
    """Adaptive cruise control: track a time-gap to the lead vehicle.

    Cascaded structure: an outer gap loop sets a speed correction on top
    of the set speed, an inner :class:`CruiseController` tracks it.
    """

    def __init__(
        self,
        set_speed_mps: float,
        *,
        time_gap_s: float = 1.8,
        standstill_gap_m: float = 5.0,
        gap_gain: float = 0.35,
    ) -> None:
        self.set_speed_mps = set_speed_mps
        self.time_gap_s = time_gap_s
        self.standstill_gap_m = standstill_gap_m
        self.gap_gain = gap_gain
        self.inner = CruiseController(set_speed_mps)

    def desired_gap(self, speed_mps: float) -> float:
        return self.standstill_gap_m + self.time_gap_s * speed_mps

    def compute(self, speed_mps: float, gap_m: float, dt: float) -> float:
        gap_error = gap_m - self.desired_gap(speed_mps)
        target = min(
            self.set_speed_mps, speed_mps + self.gap_gain * gap_error
        )
        self.inner.target_mps = max(0.0, target)
        return self.inner.compute(speed_mps, dt)

    def state_snapshot(self) -> dict:
        return {
            "inner": self.inner.state_snapshot(),
            "set_speed": self.set_speed_mps,
        }

    def adopt_state(self, snapshot: dict) -> None:
        self.inner.adopt_state(snapshot.get("inner", {}))
