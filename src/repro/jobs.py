"""Job abstractions for deterministic parallel experiment execution.

A :class:`SimJob` is a *picklable* specification of one independent
simulation run: it travels to a worker process, builds a fresh
:class:`~repro.sim.kernel.Simulator` (and whatever model it needs) there,
and returns a picklable result.  Jobs never share live simulator state —
that is what makes fan-out trivially safe.

Layering note
-------------
This module is the *protocol* between job producers (``core``, ``dse``,
``faults``, ``fleet``, ``xil``) and the executor that runs them
(:mod:`repro.exec`).  It deliberately lives at the bottom of the layer
DAG — depending only on :mod:`repro.obs` and :mod:`repro.sim` — so that
``core`` can define campaign jobs without importing the executor
machinery (the ``ARCH601`` contract: ``core`` never depends on ``exec``).
:mod:`repro.exec.jobs` re-exports every name for backward compatibility.

Determinism contract
--------------------
Every job receives a :class:`JobContext` whose ``seed`` is derived from
the executor's master seed and the job's ``job_id`` alone — never from
the worker that happens to run it, the submission chunk, or the
completion order.  A job that draws all randomness from
``ctx.rng()`` therefore produces byte-identical results whether the
batch runs serially or on any number of workers, and a retried job
replays the exact same draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .obs.metrics import MetricsRegistry
from .sim.rng import RngStreams, _derive_seed


def derive_job_seed(master_seed: int, job_id: str) -> int:
    """Stable 64-bit seed for ``job_id`` under ``master_seed``.

    Uses the same SHA-256 derivation as :class:`~repro.sim.rng.RngStreams`
    sub-streams, namespaced so job seeds never collide with stream seeds.
    """
    return _derive_seed(master_seed, f"exec.job:{job_id}")


def derive_item_seed(master_seed: int, namespace: str, index: int) -> int:
    """Stable 64-bit seed for item ``index`` of a sharded collection.

    Sharded fan-out sites (the fleet backend) must give every item — a
    vehicle, a scenario — a seed that depends only on the master seed and
    the item's own index, **never** on which shard or worker the item
    landed in.  That is what makes outcomes byte-identical across any
    shard count × worker count combination.  ``namespace`` keeps
    different collections (e.g. two campaigns in one process) from
    colliding.
    """
    return _derive_seed(master_seed, f"exec.item:{namespace}:{index}")


@dataclass
class JobContext:
    """Everything the framework hands a job at run time."""

    job_id: str
    seed: int
    #: 0 on the first run, incremented on each retry
    attempt: int
    #: fresh per-job registry; attach it to the job's Simulator and the
    #: executor will fold its digest into the merged batch report
    metrics: MetricsRegistry
    #: the batch's shared context, if one was passed to ``run_jobs``:
    #: pickled once per worker and cached there across batches, so jobs
    #: that all read one heavy object (a DSE problem with its system
    #: model) don't each ship a private copy
    shared: Any = None

    def rng(self) -> RngStreams:
        """Fresh deterministic stream registry seeded for this job."""
        return RngStreams(self.seed)


class SimJob:
    """Base class for one independent unit of simulation work.

    Subclasses must be picklable (plain attributes, no live simulators,
    no lambdas) and override :meth:`run`.  ``job_id`` must be unique
    within a batch — it names the job in reports and pins its RNG seed.
    """

    job_id: str = "job"

    #: optional estimate of this job's wall-clock runtime in seconds.
    #: When set, it seeds the executor's cost model before the first
    #: measurement arrives, so the very first round already dispatches
    #: well-sized chunks instead of single-job probes.  Purely advisory:
    #: it can never affect results, only chunk sizing.
    cost_hint: Optional[float] = None

    def run(self, ctx: JobContext) -> Any:
        """Execute the job and return a picklable result."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.job_id!r}>"


class FunctionJob(SimJob):
    """Adapter running a module-level function as a job.

    ``fn(ctx, *args, **kwargs)`` must be defined at module top level so
    it pickles by reference; lambdas and closures will not survive the
    trip to a worker process.
    """

    def __init__(self, job_id: str, fn, *args: Any, **kwargs: Any) -> None:
        self.job_id = job_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs

    def run(self, ctx: JobContext) -> Any:
        return self.fn(ctx, *self.args, **self.kwargs)


@dataclass
class JobResult:
    """Outcome of one job, successful or not."""

    index: int
    job_id: str
    seed: int
    #: total runs attempted (1 = first try succeeded)
    attempts: int
    value: Any = None
    #: ``repro.obs`` digest of the job's metrics registry (None if the
    #: job recorded nothing)
    digest: Optional[Dict[str, Any]] = None
    #: ``repr`` of the terminal exception, or None on success
    error: Optional[str] = None
    #: pid of the worker that produced the final attempt (0 = inline)
    worker_pid: int = 0
    #: wall-clock seconds of the final attempt (informational only —
    #: never part of the determinism contract)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchReport:
    """Aggregate view over one executed batch."""

    results: list = field(default_factory=list)
    retried: int = 0
    failed: int = 0

    @property
    def values(self) -> list:
        return [r.value for r in self.results]

    def merged_digest(self) -> Dict[str, Any]:
        from .obs.report import merge_digests

        return merge_digests(
            [r.digest for r in self.results if r.digest is not None],
            jobs=len(self.results),
            failed=self.failed,
            retried=self.retried,
        )
