"""Fault campaigns: sweepable chaos experiments via :mod:`repro.exec`.

A :class:`FaultCampaignSpec` describes one replicable chaos scenario: a
redundant platform, a replicated control service under heartbeat
supervision, an RPC client hammering that service with retries and
circuit breaking — and a :class:`~repro.faults.spec.FaultPlan` injected
on top.  :func:`run_fault_campaign` fans N replications out through a
:class:`~repro.exec.pool.ParallelExecutor`; each replication's RNG is
derived from the campaign master seed and the replication id alone, so
the outcome list is byte-identical for any worker count (serial ≡
parallel), which the test suite and the CI fault-soak job assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ExecutionError
from ..exec.jobs import JobContext, SimJob
from ..hw.catalog import platform_computer
from ..hw.topology import BusSpec, Topology
from ..middleware.endpoint import QOS_CONTROL
from ..middleware.paradigms import RetryPolicy, RpcClient, RpcServer
from ..model.applications import AppModel
from ..osal.task import TaskSpec
from ..security.crypto import TrustStore
from ..security.package import build_package
from ..sim import Simulator
from .injector import FaultInjector, TimelineEvent
from .report import build_resilience_report
from .spec import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.redundancy import RedundancyManager
    from ..exec.pool import ParallelExecutor


def redundant_ring_topology(n_platforms: int = 3) -> Topology:
    """``n_platforms`` platform computers on *two* Ethernet segments.

    Every computer attaches ``eth0`` to the backbone and ``eth1`` to a
    second ring segment, so a single bus outage always leaves a detour —
    the precondition for exercising reroute-under-failure scenarios.
    """
    if n_platforms < 2:
        raise ExecutionError("a redundant ring needs at least two platforms")
    topo = Topology("redundant_ring")
    backbone = topo.add_bus(
        BusSpec("eth_backbone", "ethernet", 1_000_000_000.0, tsn_capable=True)
    )
    ring = topo.add_bus(
        BusSpec("eth_ring", "ethernet", 100_000_000.0, tsn_capable=True)
    )
    for i in range(n_platforms):
        pc = platform_computer(f"platform_{i}")
        topo.add_ecu(pc)
        topo.attach(pc.name, "eth0", backbone.name)
        topo.attach(pc.name, "eth1", ring.name)
    return topo


@dataclass(frozen=True)
class FaultCampaignSpec:
    """Picklable description of one chaos-scenario replication."""

    plan: FaultPlan
    n_nodes: int = 3
    replicas: int = 2
    soak_time: float = 0.5
    heartbeat_period: float = 0.005
    app_name: str = "ctl"
    task_period: float = 0.01
    task_wcet: float = 0.001
    service_id: int = 0x500
    rpc_period: float = 0.01
    rpc_timeout: float = 0.02
    retry: Optional[RetryPolicy] = RetryPolicy(max_attempts=3, backoff=0.005)
    breaker_threshold: int = 0  # 0 disables circuit breaking
    breaker_reset: float = 0.05
    # fault-free warm-up under heartbeats/supervision before the workload
    # arms; part of the shared base, so fork-per-replication pays it once
    settle_time: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or not 1 <= self.replicas <= self.n_nodes:
            raise ExecutionError(
                "campaign needs >= 2 nodes and 1 <= replicas <= nodes"
            )
        if self.soak_time <= 0:
            raise ExecutionError("campaign soak time must be positive")
        if self.settle_time < 0:
            raise ExecutionError("campaign settle time must be >= 0")


@dataclass(frozen=True)
class FaultCampaignOutcome:
    """Picklable, bitwise-comparable summary of one replication.

    Deliberately excludes process-global identifiers (frame ids, session
    ids): those depend on what else ran in the worker process before this
    job, which would break the serial ≡ parallel guarantee.
    """

    replication: str
    timeline: Tuple[TimelineEvent, ...]
    failovers: int
    interruptions: Tuple[float, ...]
    rpc_calls: int
    rpc_successes: int
    rpc_timeouts: int
    rpc_retries: int
    rpc_failures: int
    rpc_fastfails: int
    breakers_opened: int
    frames_dropped: int
    frames_corrupted: int
    frames_delayed: int

    @property
    def success_ratio(self) -> float:
        return self.rpc_successes / self.rpc_calls if self.rpc_calls else 0.0


def _ctl_app(spec: FaultCampaignSpec) -> AppModel:
    return AppModel(
        name=spec.app_name,
        tasks=(
            TaskSpec(
                name=f"{spec.app_name}_loop",
                period=spec.task_period,
                wcet=spec.task_wcet,
            ),
        ),
        memory_kib=64,
        image_kib=128,
    )


def _pong(request) -> Tuple[str, int]:
    """The chaos service's only method (module-level: must pickle with a
    snapshotted world, which a lambda would not)."""
    return ("pong", 8)


class ChaosCaller:
    """The RPC hammering loop, in snapshot-safe callback style.

    Mirrors the event pattern of the previous generator process exactly —
    start event at the current instant, issue/await/count/re-arm — but
    with bound methods instead of a suspended frame, so a mid-soak
    snapshot copies the loop (successes counter included) cleanly.
    """

    def __init__(self, sim: Simulator, client: RpcClient, spec: FaultCampaignSpec) -> None:
        self.sim = sim
        self.client = client
        self.spec = spec
        #: single-element list for drop-in compatibility with the old
        #: scenario["successes"] closure cell
        self.successes: List[int] = [0]

    def start(self) -> None:
        self.sim.post(0.0, self._issue)

    def _issue(self) -> None:
        result = self.client.call(
            1,
            payload_bytes=32,
            qos=QOS_CONTROL,
            timeout=self.spec.rpc_timeout,
            retry=self.spec.retry,
        )
        result.add_callback(self._on_response)

    def _on_response(self, response) -> None:
        if isinstance(response, BaseException):
            raise response  # the generator version crashed here too
        if response is not None:
            self.successes[0] += 1
        self.sim.post(self.spec.rpc_period, self._issue)


def build_chaos_base(sim: Simulator, spec: FaultCampaignSpec) -> Dict[str, object]:
    """Assemble the warmed-up, fault-free part of the chaos scenario.

    Everything here is deterministic and RNG-free: platform, installs,
    settle run, RPC servers, redundancy supervision and the client.  The
    returned dict is registered under ``sim.world["chaos"]``, so a world
    forked after this call can retrieve *its own copies* of every handle
    — the basis of fork-per-replication campaigns.
    """
    from ..core.platform import DynamicPlatform
    from ..core.redundancy import RedundancyManager

    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(
        sim, redundant_ring_topology(spec.n_nodes), trust_store=store
    )
    # campaigns read aggregate outcomes, never the per-job history; a
    # bounded window keeps the base world (and its snapshot) the same
    # size no matter how long it settles or soaks
    for node in platform.nodes.values():
        for core in node.cores:
            core.job_history_limit = 16
    if spec.breaker_threshold > 0:
        platform.registry.configure_breakers(
            failure_threshold=spec.breaker_threshold,
            reset_timeout=spec.breaker_reset,
        )
    app = _ctl_app(spec)
    replica_nodes = [f"platform_{i}" for i in range(spec.replicas)]
    for node in replica_nodes:
        platform.install(build_package(app, store, "oem"), node)
    sim.run()  # let install verification settle before deployment

    # one RPC server per replica node; the registry's single offer entry
    # is (re)pointed at the primary by the redundancy manager
    servers = []
    for node in replica_nodes:
        server = RpcServer(
            platform.nodes[node].endpoint,
            spec.service_id,
            provider_app=spec.app_name,
        )
        server.register_method(1, _pong)
        servers.append(server)

    manager = RedundancyManager(
        platform, heartbeat_period=spec.heartbeat_period
    )
    manager.deploy(
        spec.app_name, replica_nodes, service_id=spec.service_id
    )

    client_node = f"platform_{spec.n_nodes - 1}"
    client = RpcClient(
        platform.nodes[client_node].endpoint,
        spec.service_id,
        client_app="chaos_client",
    )
    base: Dict[str, object] = {
        "platform": platform,
        "manager": manager,
        "servers": servers,
        "client": client,
    }
    sim.adopt("chaos", base)
    if spec.settle_time > 0:
        # warm up heartbeats and supervision fault-free; deterministic,
        # so it belongs to the base every replication shares
        sim.run(until=sim.now + spec.settle_time)
    return base


def start_chaos_workload(
    sim: Simulator, base: Dict[str, object], spec: FaultCampaignSpec, rng
) -> Dict[str, object]:
    """Arm the per-replication part: the RPC caller and the fault plan.

    This is the only RNG-consuming stage, so it runs *after* a fork —
    each replication forks the shared base world and arms its own
    injector with its own derived streams.
    """
    caller = ChaosCaller(sim, base["client"], spec)
    caller.start()
    injector = FaultInjector(sim, spec.plan, rng, platform=base["platform"])
    injector.arm()
    base["caller"] = caller
    base["successes"] = caller.successes
    base["injector"] = injector
    return base


def build_chaos_scenario(
    sim: Simulator, spec: FaultCampaignSpec, rng
) -> Dict[str, object]:
    """Assemble the full chaos scenario on ``sim`` (base + workload).

    Shared by :class:`FaultCampaignJob`, the examples and the fault-soak
    benchmark, so every consumer exercises the identical scenario.
    """
    return start_chaos_workload(sim, build_chaos_base(sim, spec), spec, rng)


def campaign_outcome(
    replication: str, scenario: Dict[str, object]
) -> FaultCampaignOutcome:
    """Condense a finished scenario into its picklable outcome."""
    platform = scenario["platform"]
    manager: "RedundancyManager" = scenario["manager"]
    client: RpcClient = scenario["client"]
    injector: FaultInjector = scenario["injector"]
    failovers = manager.all_failovers()
    buses = platform.network.buses.values()
    return FaultCampaignOutcome(
        replication=replication,
        timeline=tuple(injector.timeline),
        failovers=len(failovers),
        interruptions=tuple(f.interruption for f in failovers),
        rpc_calls=client.calls_made,
        rpc_successes=scenario["successes"][0],
        rpc_timeouts=client.timeouts,
        rpc_retries=client.retries,
        rpc_failures=client.failures,
        rpc_fastfails=client.breaker_fastfails,
        breakers_opened=platform.registry.breakers_opened(),
        frames_dropped=sum(b.frames_dropped for b in buses),
        frames_corrupted=sum(b.frames_corrupted for b in buses),
        frames_delayed=sum(b.frames_delayed for b in buses),
    )


class FaultCampaignJob(SimJob):
    """One chaos replication as a :class:`~repro.exec.SimJob`.

    Everything — simulator, platform, injector RNG — is built fresh in
    the worker from the picklable spec and the job's derived seed.
    """

    def __init__(self, job_id: str, spec: FaultCampaignSpec) -> None:
        self.job_id = job_id
        self.spec = spec

    def run(self, ctx: JobContext) -> FaultCampaignOutcome:
        sim = Simulator(metrics=ctx.metrics)
        scenario = build_chaos_scenario(sim, self.spec, ctx.rng())
        sim.run(until=sim.now + self.spec.soak_time)
        outcome = campaign_outcome(self.job_id, scenario)
        ctx.metrics.counter("faults.campaign.failovers").inc(outcome.failovers)
        ctx.metrics.counter("faults.campaign.rpc_failures").inc(
            outcome.rpc_failures
        )
        return outcome


class ForkedFaultCampaignJob(SimJob):
    """One chaos replication that clones a pre-built base world.

    The campaign builds the RNG-free chaos base once, snapshots it, and
    ships the snapshot to every worker as shared context (pickled once
    per worker, not per job).  Each replication restores a private copy
    — platform installed, supervision armed, ``sim.now`` at the settle
    point — and only arms its own caller and fault plan.  Because base
    construction is deterministic and all id sequences are sim-local,
    the outcome is byte-identical to :class:`FaultCampaignJob`'s
    rebuild-from-scratch path.
    """

    def __init__(self, job_id: str, spec: FaultCampaignSpec) -> None:
        self.job_id = job_id
        self.spec = spec

    def run(self, ctx: JobContext) -> FaultCampaignOutcome:
        snap = ctx.shared
        if snap is None:
            raise ExecutionError(
                "forked campaign job needs a SimSnapshot as shared context"
            )
        sim = snap.restore()
        base = sim.world["chaos"]
        start_chaos_workload(sim, base, self.spec, ctx.rng())
        sim.run(until=sim.now + self.spec.soak_time)
        outcome = campaign_outcome(self.job_id, base)
        # the restored world counted into its own (forked) registry; fold
        # it into the job registry so digests match the rebuild path
        ctx.metrics.absorb(sim.metrics)
        ctx.metrics.counter("faults.campaign.failovers").inc(outcome.failovers)
        ctx.metrics.counter("faults.campaign.rpc_failures").inc(
            outcome.rpc_failures
        )
        return outcome


def build_campaign_snapshot(spec: FaultCampaignSpec):
    """Build the chaos base once and return its reusable snapshot.

    The base world gets its own enabled metrics registry: forks inherit
    it (with the base counts already in), keep counting through their
    soak, and the job folds the final registry into the job context — so
    the merged digest is identical to the rebuild path's.
    """
    from ..obs.metrics import MetricsRegistry

    sim = Simulator(metrics=MetricsRegistry())
    build_chaos_base(sim, spec)
    return sim.snapshot()


@dataclass
class FaultCampaignResult:
    """Aggregate outcome of a multi-replication fault campaign."""

    outcomes: List[FaultCampaignOutcome]
    digest: Dict = field(default_factory=dict)

    def worst_interruption(self) -> float:
        worst = 0.0
        for outcome in self.outcomes:
            if outcome.interruptions:
                worst = max(worst, max(outcome.interruptions))
        return worst

    def total_timeline_events(self) -> int:
        return sum(len(o.timeline) for o in self.outcomes)


def run_fault_campaign(
    spec: FaultCampaignSpec,
    *,
    replications: int,
    executor: Optional["ParallelExecutor"] = None,
    master_seed: Optional[int] = None,
    fork: bool = True,
    checkpoint=None,
    fault_points=None,
) -> FaultCampaignResult:
    """Run ``replications`` independent chaos replications.

    With an executor the replications fan out across worker processes;
    without one they run inline.  Replication ``i`` draws all fault
    randomness from a seed derived from the master seed and the job id
    ``faults.rep{i}`` alone, so outcomes are byte-identical for any
    worker count and completion order.

    With ``fork=True`` (the default) the deterministic base world is
    built once, snapshotted, and forked per replication instead of being
    rebuilt from scratch in every job — same outcomes, a fraction of the
    time.  ``fork=False`` keeps the rebuild path (used by tests and the
    snapshot benchmark to prove the equivalence).

    ``checkpoint`` (a :class:`repro.exec.recovery.CheckpointSpec`)
    persists each completed replication atomically; an interrupted
    campaign resumes via :func:`resume_fault_campaign` /
    :func:`repro.exec.recovery.resume_campaign`, re-running only the
    missing replications with their original seeds.  ``fault_points``
    threads injected checkpoint-write crashes through the store (chaos
    testing only).
    """
    if replications < 1:
        raise ExecutionError("fault campaign needs at least one replication")
    context = None
    if fork:
        context = build_campaign_snapshot(spec)
        jobs: List[SimJob] = [
            ForkedFaultCampaignJob(f"faults.rep{i}", spec)
            for i in range(replications)
        ]
    else:
        jobs = [
            FaultCampaignJob(f"faults.rep{i}", spec)
            for i in range(replications)
        ]
    if master_seed is not None:
        seed = master_seed
    elif executor is not None:
        seed = executor.master_seed
    else:
        seed = 0
    if executor is None:
        from ..exec.pool import get_inline_executor

        executor = get_inline_executor()
    store = None
    if checkpoint is not None:
        from ..exec.recovery import CheckpointStore

        store = CheckpointStore(
            checkpoint, kind="fault_campaign",
            plan=(spec, replications, seed),
            meta={"every_n_shards": checkpoint.every_n_shards},
            fault_points=fault_points,
        )
    from ..exec.recovery import run_jobs_checkpointed

    report = run_jobs_checkpointed(
        jobs, executor=executor, master_seed=seed, context=context,
        store=store,
    )
    failed = [r for r in report.results if not r.ok]
    if failed:
        detail = "; ".join(f"{r.job_id}: {r.error}" for r in failed[:5])
        raise ExecutionError(
            f"{len(failed)}/{replications} fault replications failed ({detail})"
        )
    return FaultCampaignResult(
        outcomes=report.values, digest=report.merged_digest()
    )


def resume_fault_campaign(directory: str, *,
                          executor: Optional["ParallelExecutor"] = None,
                          fork: bool = True) -> FaultCampaignResult:
    """Resume an interrupted checkpointed fault campaign (see
    :func:`repro.exec.recovery.resume_campaign`)."""
    from ..exec.recovery import resume_campaign

    return resume_campaign(directory, executor=executor, fork=fork)


__all__ = [
    "ChaosCaller",
    "FaultCampaignJob",
    "FaultCampaignOutcome",
    "FaultCampaignResult",
    "FaultCampaignSpec",
    "ForkedFaultCampaignJob",
    "build_campaign_snapshot",
    "build_chaos_base",
    "build_chaos_scenario",
    "build_resilience_report",
    "campaign_outcome",
    "redundant_ring_topology",
    "resume_fault_campaign",
    "run_fault_campaign",
    "start_chaos_workload",
]
