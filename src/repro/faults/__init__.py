"""Deterministic fault injection (`repro.faults`).

Turns the paper's uncertainty sources — node loss, bus outages, timing
faults, clock drift — into declarative, seeded, repeatable experiments:

* :class:`FaultSpec` / :class:`FaultPlan` — picklable fault descriptions;
* :class:`FaultInjector` — schedules a plan on the sim kernel from named
  RNG streams, producing a byte-identical timeline per ``(plan, seed)``;
* :class:`ResilienceReport` — the closed loop: interruption times,
  retry/breaker/degradation counters;
* :func:`run_fault_campaign` — parallel chaos sweeps through
  :mod:`repro.exec` with a serial ≡ parallel guarantee.
"""

from .campaign import (
    FaultCampaignJob,
    FaultCampaignOutcome,
    FaultCampaignResult,
    FaultCampaignSpec,
    build_chaos_scenario,
    campaign_outcome,
    redundant_ring_topology,
    run_fault_campaign,
)
from .injector import FaultInjector, TimelineEvent
from .report import ResilienceDigest, ResilienceReport, build_resilience_report
from .spec import (
    FAULT_KINDS,
    FRAME_KINDS,
    KIND_BUS_OUTAGE,
    KIND_CLOCK_DRIFT,
    KIND_ECU_CRASH,
    KIND_FRAME_CORRUPT,
    KIND_FRAME_DELAY,
    KIND_FRAME_DROP,
    KIND_TASK_JITTER,
    KIND_TASK_OVERRUN,
    TASK_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "FRAME_KINDS",
    "FaultCampaignJob",
    "FaultCampaignOutcome",
    "FaultCampaignResult",
    "FaultCampaignSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KIND_BUS_OUTAGE",
    "KIND_CLOCK_DRIFT",
    "KIND_ECU_CRASH",
    "KIND_FRAME_CORRUPT",
    "KIND_FRAME_DELAY",
    "KIND_FRAME_DROP",
    "KIND_TASK_JITTER",
    "KIND_TASK_OVERRUN",
    "ResilienceDigest",
    "ResilienceReport",
    "TASK_KINDS",
    "TimelineEvent",
    "build_chaos_scenario",
    "build_resilience_report",
    "campaign_outcome",
    "redundant_ring_topology",
    "run_fault_campaign",
]
