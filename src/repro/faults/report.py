"""Closing the resilience loop: what did the faults cost us?

A :class:`ResilienceReport` aggregates, for one faulted run, the
injector's timeline, the service interruptions observed by the
:class:`~repro.core.redundancy.RedundancyManager`, the retry/breaker
counters of the RPC layer and the platform's degradation-mode events —
the quantities the paper's Section 3.3/3.4 argue a dynamic platform must
keep visible while managing uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..obs.metrics import accumulate_exact, exact_total


@dataclass
class ResilienceReport:
    """Aggregated outcome of one fault-injected run."""

    plan: str = ""
    faults_declared: int = 0
    timeline_events: int = 0
    activations: Dict[str, int] = field(default_factory=dict)
    #: per-failover service interruption times (seconds)
    interruptions: List[float] = field(default_factory=list)
    failovers: int = 0
    rpc_calls: int = 0
    rpc_attempts: int = 0
    rpc_timeouts: int = 0
    rpc_retries: int = 0
    rpc_failures: int = 0
    rpc_fastfails: int = 0
    breakers_opened: int = 0
    degradation_entries: int = 0
    degradation_exits: int = 0
    degradation_events: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def worst_interruption(self) -> float:
        return max(self.interruptions) if self.interruptions else 0.0

    @property
    def mean_interruption(self) -> float:
        if not self.interruptions:
            return 0.0
        return sum(self.interruptions) / len(self.interruptions)

    def to_digest(self) -> Dict[str, object]:
        """JSON-serialisable summary (for BENCH files and CI artifacts)."""
        return {
            "plan": self.plan,
            "faults_declared": self.faults_declared,
            "timeline_events": self.timeline_events,
            "activations": dict(sorted(self.activations.items())),
            "failovers": self.failovers,
            "interruptions": list(self.interruptions),
            "worst_interruption": self.worst_interruption,
            "mean_interruption": self.mean_interruption,
            "rpc": {
                "calls": self.rpc_calls,
                "attempts": self.rpc_attempts,
                "timeouts": self.rpc_timeouts,
                "retries": self.rpc_retries,
                "failures": self.rpc_failures,
                "breaker_fastfails": self.rpc_fastfails,
            },
            "breakers_opened": self.breakers_opened,
            "degradation": {
                "entries": self.degradation_entries,
                "exits": self.degradation_exits,
                "events": [list(e) for e in self.degradation_events],
            },
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"Resilience report — plan {self.plan!r}",
            f"  faults declared     : {self.faults_declared}",
            f"  timeline events     : {self.timeline_events}",
        ]
        for kind, count in sorted(self.activations.items()):
            lines.append(f"    {kind:<18}: {count}")
        lines.append(
            f"  failovers           : {self.failovers} "
            f"(worst interruption {self.worst_interruption * 1e3:.2f} ms, "
            f"mean {self.mean_interruption * 1e3:.2f} ms)"
        )
        lines.append(
            f"  rpc                 : {self.rpc_calls} calls, "
            f"{self.rpc_attempts} attempts, {self.rpc_timeouts} timeouts, "
            f"{self.rpc_retries} retries, {self.rpc_failures} failures, "
            f"{self.rpc_fastfails} breaker fast-fails"
        )
        lines.append(f"  breakers opened     : {self.breakers_opened}")
        lines.append(
            f"  degradation         : {self.degradation_entries} entries, "
            f"{self.degradation_exits} exits"
        )
        for time, mode, action in self.degradation_events:
            lines.append(f"    t={time:.4f}s {action} {mode}")
        return "\n".join(lines)


@dataclass
class ResilienceDigest:
    """Constant-size, mergeable reduction of many resilience reports.

    A :class:`ResilienceReport` keeps per-failover interruption lists and
    degradation event logs — O(events) state that a fleet-scale campaign
    cannot afford per vehicle.  The digest keeps only additive counters
    plus an error-free interruption sum (Shewchuk partials, the same
    machinery as :class:`repro.obs.metrics.Histogram`), so merging shard
    digests in any order or grouping yields byte-identical campaign
    digests.
    """

    reports: int = 0
    faults_declared: int = 0
    timeline_events: int = 0
    activations: Dict[str, int] = field(default_factory=dict)
    failovers: int = 0
    interruption_count: int = 0
    worst_interruption: float = 0.0
    breakers_opened: int = 0
    degradation_entries: int = 0
    degradation_exits: int = 0
    _interruption_partials: List[float] = field(default_factory=list)

    @classmethod
    def from_report(cls, report: ResilienceReport) -> "ResilienceDigest":
        digest = cls(
            reports=1,
            faults_declared=report.faults_declared,
            timeline_events=report.timeline_events,
            activations=dict(report.activations),
            failovers=report.failovers,
            interruption_count=len(report.interruptions),
            worst_interruption=report.worst_interruption,
            breakers_opened=report.breakers_opened,
            degradation_entries=report.degradation_entries,
            degradation_exits=report.degradation_exits,
        )
        for value in report.interruptions:
            accumulate_exact(digest._interruption_partials, value)
        return digest

    @property
    def interruption_sum(self) -> float:
        """Correctly rounded total interruption time (exact under merge)."""
        return exact_total(self._interruption_partials)

    @property
    def mean_interruption(self) -> float:
        if not self.interruption_count:
            return 0.0
        return self.interruption_sum / self.interruption_count

    def merge(self, other: "ResilienceDigest") -> None:
        """Fold ``other`` into this digest; commutative and exact."""
        self.reports += other.reports
        self.faults_declared += other.faults_declared
        self.timeline_events += other.timeline_events
        for kind in sorted(other.activations):
            self.activations[kind] = (
                self.activations.get(kind, 0) + other.activations[kind]
            )
        self.failovers += other.failovers
        self.interruption_count += other.interruption_count
        self.worst_interruption = max(
            self.worst_interruption, other.worst_interruption
        )
        self.breakers_opened += other.breakers_opened
        self.degradation_entries += other.degradation_entries
        self.degradation_exits += other.degradation_exits
        for value in other._interruption_partials:
            accumulate_exact(self._interruption_partials, value)

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form with deterministic key order."""
        return {
            "reports": self.reports,
            "faults_declared": self.faults_declared,
            "timeline_events": self.timeline_events,
            "activations": dict(sorted(self.activations.items())),
            "failovers": self.failovers,
            "interruptions": {
                "count": self.interruption_count,
                "sum": self.interruption_sum,
                "mean": self.mean_interruption,
                "worst": self.worst_interruption,
            },
            "breakers_opened": self.breakers_opened,
            "degradation": {
                "entries": self.degradation_entries,
                "exits": self.degradation_exits,
            },
        }


def build_resilience_report(
    *,
    injector=None,
    redundancy=None,
    clients: Tuple = (),
    registry=None,
    degradation=None,
) -> ResilienceReport:
    """Assemble a :class:`ResilienceReport` from the run's components.

    Every component is optional, so partial setups (e.g. OS-only fault
    experiments without a network) still report what they have.
    """
    report = ResilienceReport()
    if injector is not None:
        report.plan = injector.plan.name
        report.faults_declared = len(injector.plan)
        report.timeline_events = len(injector.timeline)
        activations: Dict[str, int] = {}
        for _time, kind, _target, _action in injector.timeline:
            activations[kind] = activations.get(kind, 0) + 1
        report.activations = activations
    if redundancy is not None:
        failovers = redundancy.all_failovers()
        report.failovers = len(failovers)
        report.interruptions = [f.interruption for f in failovers]
    for client in clients:
        report.rpc_calls += client.calls_made
        report.rpc_attempts += client.attempts_made
        report.rpc_timeouts += client.timeouts
        report.rpc_retries += client.retries
        report.rpc_failures += client.failures
        report.rpc_fastfails += client.breaker_fastfails
    if registry is not None:
        report.breakers_opened = registry.breakers_opened()
    if degradation is not None:
        report.degradation_entries = degradation.entries
        report.degradation_exits = degradation.exits
        report.degradation_events = [
            (e.time, e.mode, e.action) for e in degradation.events
        ]
    return report
