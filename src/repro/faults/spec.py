"""Declarative fault descriptions.

A :class:`FaultSpec` describes *one* fault — what kind, which target,
when, for how long, how often and how severe.  A :class:`FaultPlan` is an
ordered collection of specs.  Both are frozen dataclasses built from
plain values, so plans are hashable, picklable (they travel to
:mod:`repro.exec` worker processes unchanged) and cheap to compare.

All randomness (occurrence jitter, per-frame probabilities, perturbation
magnitudes) is drawn by the :class:`~repro.faults.injector.FaultInjector`
from named :class:`~repro.sim.rng.RngStreams` sub-streams, never here —
the same ``(plan, seed)`` pair therefore always produces a byte-identical
fault timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ConfigurationError

#: Fault kinds understood by the injector.
KIND_ECU_CRASH = "ecu_crash"
KIND_BUS_OUTAGE = "bus_outage"
KIND_FRAME_DROP = "frame_drop"
KIND_FRAME_CORRUPT = "frame_corrupt"
KIND_FRAME_DELAY = "frame_delay"
KIND_TASK_OVERRUN = "task_overrun"
KIND_TASK_JITTER = "task_jitter"
KIND_CLOCK_DRIFT = "clock_drift"

FAULT_KINDS = frozenset(
    {
        KIND_ECU_CRASH,
        KIND_BUS_OUTAGE,
        KIND_FRAME_DROP,
        KIND_FRAME_CORRUPT,
        KIND_FRAME_DELAY,
        KIND_TASK_OVERRUN,
        KIND_TASK_JITTER,
        KIND_CLOCK_DRIFT,
    }
)

#: Kinds targeting a bus (window faults applied per delivered frame).
FRAME_KINDS = frozenset({KIND_FRAME_DROP, KIND_FRAME_CORRUPT, KIND_FRAME_DELAY})
#: Kinds targeting a core (window faults applied per task activation).
TASK_KINDS = frozenset({KIND_TASK_OVERRUN, KIND_TASK_JITTER})
#: Kinds that need a positive magnitude to mean anything.
MAGNITUDE_KINDS = frozenset(
    {KIND_FRAME_DELAY, KIND_TASK_OVERRUN, KIND_TASK_JITTER, KIND_CLOCK_DRIFT}
)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        target: name of the faulted entity — a platform node for
            ``ecu_crash``, a bus for ``bus_outage`` and the frame faults,
            a core (or a node, meaning all its cores) for the task faults
            and ``clock_drift``.
        start: activation time of the first occurrence (seconds).
        duration: how long each occurrence stays active.  ``0`` means
            permanent — the bus stays down, the crashed ECU never
            reboots, the fault window never closes.
        magnitude: kind-specific severity — delay seconds for
            ``frame_delay``, relative execution stretch for
            ``task_overrun`` (``0.5`` → +50 % wcet), maximum release
            delay for ``task_jitter``, relative drift for ``clock_drift``.
        probability: per-event application probability for the frame and
            task faults (``1.0`` hits every frame/activation in window).
        count: number of occurrences (intermittent faults recur).
        period: spacing between occurrence starts when ``count > 1``.
        jitter: each occurrence start is shifted by a uniform draw from
            ``[0, jitter)`` out of the seeded fault stream.
    """

    kind: str
    target: str
    start: float
    duration: float = 0.0
    magnitude: float = 0.0
    probability: float = 1.0
    count: int = 1
    period: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if not self.target:
            raise ConfigurationError(f"{self.kind} fault needs a target")
        if self.start < 0:
            raise ConfigurationError("fault start time cannot be negative")
        if self.duration < 0:
            raise ConfigurationError("fault duration cannot be negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault probability must be within [0, 1]")
        if self.count < 1:
            raise ConfigurationError("fault count must be >= 1")
        if self.count > 1 and self.period <= 0:
            raise ConfigurationError(
                "recurring faults (count > 1) need a positive period"
            )
        if self.jitter < 0:
            raise ConfigurationError("occurrence jitter cannot be negative")
        if self.kind in MAGNITUDE_KINDS and self.magnitude == 0.0:
            raise ConfigurationError(
                f"{self.kind} fault needs a non-zero magnitude"
            )
        if self.kind in FRAME_KINDS | TASK_KINDS and self.count > 1 \
                and self.duration > self.period:
            raise ConfigurationError(
                "recurring window faults must not overlap themselves "
                "(duration > period)"
            )

    @property
    def intermittent(self) -> bool:
        return self.count > 1

    @property
    def permanent(self) -> bool:
        return self.duration == 0.0


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable collection of faults to inject.

    The order of ``faults`` is meaningful: occurrence-jitter draws are
    consumed in plan order at arm time, so two plans with the same specs
    in the same order produce identical timelines for a given seed.
    """

    name: str
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plan needs a name")
        # accept any iterable of specs but store a tuple (hashable/frozen)
        object.__setattr__(self, "faults", tuple(self.faults))
        for entry in self.faults:
            if not isinstance(entry, FaultSpec):
                raise ConfigurationError(
                    f"fault plan {self.name!r} contains a non-FaultSpec "
                    f"entry: {entry!r}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def of_kind(self, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind == kind)

    def targets(self) -> Tuple[str, ...]:
        return tuple(sorted({f.target for f in self.faults}))
