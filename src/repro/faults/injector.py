"""Deterministic fault injection on the simulation kernel.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.spec.FaultPlan` into scheduled kernel events.  All
randomness comes from named sub-streams of a
:class:`~repro.sim.rng.RngStreams` — occurrence jitter from
``<stream>.occurrence``, per-frame draws from ``<stream>.frame.<bus>``,
per-activation draws from ``<stream>.task.<core>`` — so a given
``(plan, seed)`` pair always produces a byte-identical fault
:attr:`~FaultInjector.timeline`, regardless of what else runs in the
simulation.

Zero-overhead when idle: the frame hooks (``BusModel._fault_hook``) and
task hooks (``Core.fault_perturb``) are installed only while a matching
fault window is active and removed when the last window on that bus/core
closes, restoring the single-``None``-test fast path of the underlying
layers.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..network.base import BusModel
from ..network.frame import Frame
from ..osal.core import Core
from ..sim import ScheduledCall, Simulator
from ..sim.rng import RngStreams
from .spec import (
    FRAME_KINDS,
    KIND_BUS_OUTAGE,
    KIND_CLOCK_DRIFT,
    KIND_ECU_CRASH,
    KIND_FRAME_CORRUPT,
    KIND_FRAME_DROP,
    KIND_TASK_OVERRUN,
    FaultPlan,
    FaultSpec,
)

#: One timeline entry: (time, kind, target, action).
TimelineEvent = Tuple[float, str, str, str]


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a simulation.

    Args:
        sim: the simulation kernel.
        plan: the declarative fault plan.
        rng: an :class:`RngStreams` registry or an integer master seed.
        platform: the :class:`~repro.core.platform.DynamicPlatform` under
            test; required for ``ecu_crash`` faults and used to resolve
            the network and node cores when not given explicitly.
        network: the :class:`~repro.network.gateway.VehicleNetwork`;
            required for bus faults when no platform is given.
        cores: extra :class:`~repro.osal.core.Core` objects addressable
            by name (standalone OS-level experiments without a platform).
        stream: base name of the RNG sub-streams.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        rng,
        *,
        platform=None,
        network=None,
        cores: Tuple[Core, ...] = (),
        stream: str = "faults",
    ) -> None:
        self.sim = sim
        self.plan = plan
        if isinstance(rng, int):
            rng = RngStreams(rng)
        self.rng: RngStreams = rng
        self.platform = platform
        self.network = network if network is not None else (
            platform.network if platform is not None else None
        )
        self.stream = stream
        self.armed = False
        #: chronological record of everything the injector did
        self.timeline: List[TimelineEvent] = []
        self._scheduled: List[ScheduledCall] = []
        self._active_bus_faults: Dict[str, List[FaultSpec]] = {}
        self._active_core_faults: Dict[str, List[FaultSpec]] = {}
        self._frame_streams: Dict[str, object] = {}
        self._task_streams: Dict[str, object] = {}
        # core name -> Core, plus node name -> all its cores
        self._cores: Dict[str, List[Core]] = {}
        def register(key: str, core: Core) -> None:
            entry = self._cores.setdefault(key, [])
            if core not in entry:
                entry.append(core)

        for core in cores:
            register(core.name, core)
        if platform is not None:
            for node_name, node in platform.nodes.items():
                for core in node.cores:
                    register(node_name, core)
                    register(core.name, core)
        metrics = sim.metrics
        self._m_activated: Dict[str, object] = {
            kind: metrics.counter("faults.activated", kind=kind)
            for kind in sorted({f.kind for f in plan.faults})
        }
        self._m_events = metrics.counter("faults.events")

    # -- arming ------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Validate targets and schedule every occurrence.  Idempotent."""
        if self.armed:
            return self
        self._validate_targets()
        base = self.sim.now
        occurrence = self.rng.stream(f"{self.stream}.occurrence")
        for fault in self.plan.faults:
            for k in range(fault.count):
                when = base + fault.start + k * fault.period
                if fault.jitter > 0:
                    when += occurrence.uniform(0.0, fault.jitter)
                self._scheduled.append(
                    self.sim.at(when, self._activate, fault, k)
                )
        self.armed = True
        return self

    def disarm(self) -> None:
        """Cancel pending occurrences and remove all installed hooks."""
        for call in self._scheduled:
            call.cancel()
        self._scheduled.clear()
        for bus_name in list(self._active_bus_faults):
            self._active_bus_faults.pop(bus_name)
            if self.network is not None and bus_name in self.network.buses:
                self.network.buses[bus_name]._fault_hook = None
        for core_name in list(self._active_core_faults):
            self._active_core_faults.pop(core_name)
            for core in self._cores.get(core_name, ()):
                core.fault_perturb = None
        self.armed = False

    def _validate_targets(self) -> None:
        for fault in self.plan.faults:
            kind = fault.kind
            if kind == KIND_ECU_CRASH:
                if self.platform is None:
                    raise ConfigurationError(
                        "ecu_crash faults need a platform"
                    )
                self.platform.node(fault.target)  # raises if unknown
            elif kind == KIND_BUS_OUTAGE or kind in FRAME_KINDS:
                if self.network is None:
                    raise ConfigurationError(
                        f"{kind} faults need a network"
                    )
                if fault.target not in self.network.buses:
                    raise ConfigurationError(
                        f"{kind} fault targets unknown bus {fault.target!r}"
                    )
            else:  # task faults and clock drift target cores
                if not self._cores.get(fault.target):
                    raise ConfigurationError(
                        f"{kind} fault targets unknown core/node "
                        f"{fault.target!r}"
                    )

    # -- occurrence activation ---------------------------------------------

    def _activate(self, fault: FaultSpec, occurrence: int) -> None:
        kind = fault.kind
        self._m_activated[kind].inc()
        if kind == KIND_ECU_CRASH:
            self._crash(fault)
        elif kind == KIND_BUS_OUTAGE:
            self._bus_outage(fault)
        elif kind in FRAME_KINDS:
            self._open_bus_window(fault)
        elif kind == KIND_CLOCK_DRIFT:
            self._clock_drift(fault)
        else:  # task window faults
            self._open_core_window(fault)

    def _record(self, time: float, kind: str, target: str, action: str) -> None:
        self.timeline.append((time, kind, target, action))

    def _later(self, delay: float, callback, *args) -> None:
        self._scheduled.append(self.sim.schedule(delay, callback, *args))

    # ECU crash + reboot

    def _crash(self, fault: FaultSpec) -> None:
        node = self.platform.node(fault.target)
        if node.failed:
            self._record(self.sim.now, fault.kind, fault.target, "skipped")
            return
        self.platform.fail_node(fault.target)
        self._record(self.sim.now, fault.kind, fault.target, "crash")
        if fault.duration > 0:
            self._later(fault.duration, self._reboot, fault)

    def _reboot(self, fault: FaultSpec) -> None:
        node = self.platform.node(fault.target)
        if not node.failed:
            return
        self.platform.recover_node(fault.target)
        self._record(self.sim.now, fault.kind, fault.target, "reboot")

    # Bus outage

    def _bus_outage(self, fault: FaultSpec) -> None:
        already_down = fault.target in self.network._failed_buses
        self.network.fail_bus(fault.target)
        self._record(
            self.sim.now, fault.kind, fault.target,
            "skipped" if already_down else "outage",
        )
        if fault.duration > 0 and not already_down:
            self._later(fault.duration, self._bus_repair, fault)

    def _bus_repair(self, fault: FaultSpec) -> None:
        self.network.repair_bus(fault.target)
        self._record(self.sim.now, fault.kind, fault.target, "repair")

    # Windowed frame faults on one bus

    def _open_bus_window(self, fault: FaultSpec) -> None:
        specs = self._active_bus_faults.setdefault(fault.target, [])
        specs.append(fault)
        self.network.buses[fault.target]._fault_hook = self._on_bus_frame
        self._record(self.sim.now, fault.kind, fault.target, "window_open")
        if fault.duration > 0:
            self._later(fault.duration, self._close_bus_window, fault)

    def _close_bus_window(self, fault: FaultSpec) -> None:
        specs = self._active_bus_faults.get(fault.target, [])
        if fault in specs:
            specs.remove(fault)
        if not specs:
            self._active_bus_faults.pop(fault.target, None)
            # last window on this bus closed: restore the zero-overhead path
            self.network.buses[fault.target]._fault_hook = None
        self._record(self.sim.now, fault.kind, fault.target, "window_close")

    # Windowed task faults on one core (or every core of a node)

    def _open_core_window(self, fault: FaultSpec) -> None:
        for core in self._cores[fault.target]:
            # windows are tracked per *core* regardless of whether the
            # spec addressed the core or its whole node, so overlapping
            # node- and core-targeted windows compose correctly
            self._active_core_faults.setdefault(core.name, []).append(fault)
            core.fault_perturb = partial(self._on_task_activation, core)
        self._record(self.sim.now, fault.kind, fault.target, "window_open")
        if fault.duration > 0:
            self._later(fault.duration, self._close_core_window, fault)

    def _close_core_window(self, fault: FaultSpec) -> None:
        for core in self._cores[fault.target]:
            specs = self._active_core_faults.get(core.name, [])
            if fault in specs:
                specs.remove(fault)
            if not specs:
                self._active_core_faults.pop(core.name, None)
                core.fault_perturb = None
        self._record(self.sim.now, fault.kind, fault.target, "window_close")

    # Clock drift

    def _clock_drift(self, fault: FaultSpec) -> None:
        for core in self._cores[fault.target]:
            core.set_clock_drift(fault.magnitude)
        self._record(self.sim.now, fault.kind, fault.target, "drift_on")
        if fault.duration > 0:
            self._later(fault.duration, self._clock_drift_off, fault)

    def _clock_drift_off(self, fault: FaultSpec) -> None:
        for core in self._cores[fault.target]:
            core.set_clock_drift(0.0)
        self._record(self.sim.now, fault.kind, fault.target, "drift_off")

    # -- per-event hooks ----------------------------------------------------

    def _frame_stream(self, bus_name: str):
        stream = self._frame_streams.get(bus_name)
        if stream is None:
            stream = self.rng.stream(f"{self.stream}.frame.{bus_name}")
            self._frame_streams[bus_name] = stream
        return stream

    def _task_stream(self, core_name: str):
        stream = self._task_streams.get(core_name)
        if stream is None:
            stream = self.rng.stream(f"{self.stream}.task.{core_name}")
            self._task_streams[core_name] = stream
        return stream

    def _on_bus_frame(self, bus: BusModel, frame: Frame) -> Optional[tuple]:
        """``BusModel._fault_hook`` — first matching active spec wins."""
        specs = self._active_bus_faults.get(bus.name)
        if not specs:
            return None
        stream = self._frame_stream(bus.name)
        for spec in specs:
            if spec.probability < 1.0 and stream.random() >= spec.probability:
                continue
            self._m_events.inc()
            now = self.sim.now
            if spec.kind == KIND_FRAME_DROP:
                self._record(now, spec.kind, bus.name, "drop")
                return ("drop",)
            if spec.kind == KIND_FRAME_CORRUPT:
                self._record(now, spec.kind, bus.name, "corrupt")
                return ("corrupt",)
            self._record(now, spec.kind, bus.name, "delay")
            return ("delay", spec.magnitude)
        return None

    def _on_task_activation(
        self, core: Core, task, scaled_wcet: float
    ) -> Tuple[float, float]:
        """``Core.fault_perturb`` — overruns stack multiplicatively,
        jitter delays add up."""
        release_delay = 0.0
        specs = self._active_core_faults.get(core.name)
        if not specs:
            return scaled_wcet, release_delay
        stream = self._task_stream(core.name)
        now = self.sim.now
        for spec in specs:
            if spec.probability < 1.0 and stream.random() >= spec.probability:
                continue
            self._m_events.inc()
            if spec.kind == KIND_TASK_OVERRUN:
                scaled_wcet *= 1.0 + spec.magnitude
                self._record(now, spec.kind, core.name, "overrun")
            else:
                release_delay += stream.uniform(0.0, spec.magnitude)
                self._record(now, spec.kind, core.name, "jitter")
        return scaled_wcet, release_delay

    # -- queries ------------------------------------------------------------

    def events_of_kind(self, kind: str) -> List[TimelineEvent]:
        return [e for e in self.timeline if e[1] == kind]

    def counts_by_action(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _t, _kind, _target, action in self.timeline:
            out[action] = out.get(action, 0) + 1
        return out
