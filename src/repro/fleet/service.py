"""Staged OTA campaigns over sharded fleets, with halt and admission.

:class:`FleetCampaign` rolls the new version out in canary → cohort →
fleet waves (:func:`repro.core.campaign.plan_waves`), simulating each
wave's vehicles through :func:`repro.fleet.shard.run_fleet` and judging
the wave's *merged digest* against the declared regression threshold.  A
regressed wave halts the campaign and re-runs its vehicles on the old
version — the rollback — so the final campaign digest shows the fleet
back in a healthy state.

:class:`CampaignAdmission` bounds how many campaigns may drive the shared
executor pool concurrently; :class:`FleetService` queues or rejects the
rest, stepping active campaigns one wave at a time in round-robin order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.campaign import plan_waves
from ..errors import UpdateError
from .shard import TAG_NEW, TAG_OLD, FleetSpec, build_fleet_snapshots, run_fleet
from .summary import FleetDigest, TopK


@dataclass(frozen=True)
class FleetCampaignSpec:
    """Picklable description of one staged rollout campaign."""

    fleet: FleetSpec = field(default_factory=FleetSpec)
    #: cumulative fleet fractions per wave — canary, cohort, full fleet
    stages: Tuple[float, ...] = (0.01, 0.1, 1.0)
    #: fixed shard size; ``None`` lets the executor pick (a few per worker)
    shard_size: Optional[int] = None
    #: halt when a wave's merged deadline-miss ratio exceeds this
    halt_miss_ratio: float = 0.05


@dataclass
class WaveOutcome:
    """One wave's merged result — O(1) state, the digest is a summary."""

    wave: int
    start: int
    stop: int
    tag: str
    miss_ratio: float
    halted: bool
    digest_json: Dict[str, object]


@dataclass
class FleetCampaignResult:
    """Final campaign outcome: wave digests plus one campaign digest."""

    spec: FleetCampaignSpec
    waves: List[WaveOutcome] = field(default_factory=list)
    halted: bool = False
    rolled_back: bool = False
    vehicles_updated: int = 0
    campaign_digest: Dict[str, object] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return not self.halted


class FleetCampaign:
    """A steppable staged rollout; one :meth:`step` call runs one wave.

    Steppable so :class:`FleetService` can interleave waves of several
    admitted campaigns over one shared executor instead of running each
    campaign to completion serially.
    """

    def __init__(
        self,
        spec: FleetCampaignSpec,
        *,
        executor=None,
        fork: bool = True,
        checkpoint=None,
        fault_points=None,
    ) -> None:
        if spec.fleet.size < 1:
            raise UpdateError("fleet campaign needs at least one vehicle")
        self.spec = spec
        self.executor = executor
        self.fork = fork
        self.waves = plan_waves(spec.fleet.size, stages=spec.stages)
        self._wave_index = 0
        self._digest = FleetDigest(worst=TopK(k=spec.fleet.top_k))
        self._snapshots = None
        if fork:
            self._snapshots = build_fleet_snapshots(
                spec.fleet, tags=(TAG_OLD, TAG_NEW)
            )
        self.result = FleetCampaignResult(spec=spec)
        #: durable shard store; every wave (rollback included) reads and
        #: writes it, so an interrupted campaign resumes mid-wave from
        #: :func:`repro.exec.recovery.resume_campaign` with the exact
        #: digest an uninterrupted run would produce — wave boundaries,
        #: halt decisions and rollback are recomputed from the spec, the
        #: only durable state is the per-shard digests themselves
        self.store = None
        if checkpoint is not None:
            from ..exec.recovery import CheckpointStore

            self.store = CheckpointStore(
                checkpoint, kind="fleet_campaign", plan=spec,
                meta={"every_n_shards": checkpoint.every_n_shards},
                fault_points=fault_points,
            )

    @property
    def done(self) -> bool:
        return self.result.halted or self._wave_index >= len(self.waves)

    def step(self) -> Optional[WaveOutcome]:
        """Run the next wave; returns its outcome (None when done).

        The wave's vehicles soak on the **new** version and reduce to one
        merged digest.  If the digest's deadline-miss ratio exceeds the
        declared threshold the campaign halts and the same vehicles are
        re-run on the old version (the rollback), so the campaign digest
        ends on the fleet's restored state.
        """
        if self.done:
            return None
        start, stop = self.waves[self._wave_index]
        wave_number = self._wave_index + 1
        self._wave_index += 1
        run = run_fleet(
            self.spec.fleet, executor=self.executor, fork=self.fork,
            tag=TAG_NEW, shard_size=self.spec.shard_size,
            snapshots=self._snapshots, start=start, stop=stop,
            store=self.store,
        )
        halted = run.digest.miss_ratio > self.spec.halt_miss_ratio
        outcome = WaveOutcome(
            wave=wave_number, start=start, stop=stop, tag=TAG_NEW,
            miss_ratio=run.digest.miss_ratio, halted=halted,
            digest_json=run.digest_json,
        )
        self.result.waves.append(outcome)
        if halted:
            self.result.halted = True
            self._rollback(start, stop, wave_number)
        else:
            self._digest.merge(run.digest)
            self.result.vehicles_updated += run.vehicles
        if self.done:
            self.result.campaign_digest = self._digest.to_json()
        return outcome

    def _rollback(self, start: int, stop: int, wave_number: int) -> None:
        """Re-run the halted wave's vehicles on the old version."""
        run = run_fleet(
            self.spec.fleet, executor=self.executor, fork=self.fork,
            tag=TAG_OLD, shard_size=self.spec.shard_size,
            snapshots=self._snapshots, start=start, stop=stop,
            store=self.store,
        )
        self.result.rolled_back = True
        self.result.waves.append(WaveOutcome(
            wave=wave_number, start=start, stop=stop, tag=TAG_OLD,
            miss_ratio=run.digest.miss_ratio, halted=False,
            digest_json=run.digest_json,
        ))
        self._digest.merge(run.digest)

    def run(self) -> FleetCampaignResult:
        """Run every remaining wave to completion."""
        while not self.done:
            self.step()
        return self.result


def run_fleet_campaign(
    spec: FleetCampaignSpec,
    *,
    executor=None,
    fork: bool = True,
    checkpoint=None,
    fault_points=None,
) -> FleetCampaignResult:
    """Build and run one staged campaign to completion.

    With ``checkpoint`` (a :class:`repro.exec.recovery.CheckpointSpec`)
    every completed shard digest is persisted atomically; if the process
    dies, :func:`repro.exec.recovery.resume_campaign` finishes the
    campaign from the directory alone with a byte-identical digest.
    """
    return FleetCampaign(
        spec, executor=executor, fork=fork, checkpoint=checkpoint,
        fault_points=fault_points,
    ).run()


def resume_fleet_campaign(directory: str, *, executor=None,
                          fork: bool = True) -> FleetCampaignResult:
    """Resume an interrupted checkpointed campaign (see
    :func:`repro.exec.recovery.resume_campaign`)."""
    from ..exec.recovery import resume_campaign

    return resume_campaign(directory, executor=executor, fork=fork)


class CampaignAdmission:
    """Bounds concurrent campaigns against the shared worker pool.

    ``max_active`` campaigns may step concurrently; up to ``max_queued``
    more wait; anything beyond that is rejected outright.  Keeping the
    bound at the campaign level means one runaway tenant cannot occupy
    every pool slot with queued shard jobs.
    """

    def __init__(self, max_active: int = 2, max_queued: int = 8) -> None:
        if max_active < 1:
            raise UpdateError("admission needs max_active >= 1")
        if max_queued < 0:
            raise UpdateError("admission needs max_queued >= 0")
        self.max_active = max_active
        self.max_queued = max_queued
        self.active: List[str] = []
        self.queued: Deque[str] = deque()
        self.rejected = 0

    def admit(self, ticket: str) -> str:
        """Returns ``"active"``, ``"queued"`` or ``"rejected"``."""
        if len(self.active) < self.max_active:
            self.active.append(ticket)
            return "active"
        if len(self.queued) < self.max_queued:
            self.queued.append(ticket)
            return "queued"
        self.rejected += 1
        return "rejected"

    def release(self, ticket: str) -> Optional[str]:
        """Finish ``ticket``; returns the promoted ticket, if any.

        Safe to call for a ticket that is not (or no longer) active —
        error paths may release defensively, and a double release must
        not free somebody else's slot.
        """
        if ticket in self.active:
            self.active.remove(ticket)
        elif ticket in self.queued:
            self.queued.remove(ticket)
            return None
        else:
            return None
        if self.queued and len(self.active) < self.max_active:
            promoted = self.queued.popleft()
            self.active.append(promoted)
            return promoted
        return None


class FleetService:
    """Multi-campaign front end over one shared executor."""

    def __init__(
        self,
        *,
        executor=None,
        admission: Optional[CampaignAdmission] = None,
    ) -> None:
        self.executor = executor
        self.admission = (
            admission if admission is not None else CampaignAdmission()
        )
        self._campaigns: Dict[str, FleetCampaign] = {}
        self.completed: Dict[str, FleetCampaignResult] = {}
        #: ticket → repr of the exception that killed its campaign
        self.failed: Dict[str, str] = {}
        self._counter = 0

    def submit(
        self, spec: FleetCampaignSpec, *, fork: bool = True
    ) -> Tuple[str, str]:
        """Submit a campaign; returns ``(ticket, state)``.

        ``state`` is the admission verdict — rejected campaigns get a
        ticket for bookkeeping but never run.
        """
        self._counter += 1
        ticket = f"campaign-{self._counter}"
        state = self.admission.admit(ticket)
        if state != "rejected":
            self._campaigns[ticket] = FleetCampaign(
                spec, executor=self.executor, fork=fork
            )
        return ticket, state

    def step(self) -> bool:
        """Advance every active campaign by one wave (round-robin).

        Returns True while any campaign is still active or queued.

        A campaign whose wave raises is recorded in :attr:`failed` and
        its admission slot is released immediately — a crashed tenant
        must never permanently shrink ``max_active`` for everyone else.
        """
        for ticket in list(self.admission.active):
            campaign = self._campaigns[ticket]
            try:
                campaign.step()
            except Exception as exc:  # noqa: BLE001 - tenant isolation
                self.failed[ticket] = repr(exc)
                del self._campaigns[ticket]
                self.admission.release(ticket)
                continue
            if campaign.done:
                self.completed[ticket] = campaign.result
                del self._campaigns[ticket]
                self.admission.release(ticket)
        return bool(self.admission.active or self.admission.queued)

    def run_until_idle(self) -> Dict[str, FleetCampaignResult]:
        """Step until every admitted campaign has finished."""
        while self.step():
            pass
        return self.completed
