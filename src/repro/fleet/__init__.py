"""Fleet-scale campaign backend: sharded simulation, mergeable digests.

The paper's OEM backend monitors a fleet and stages OTA rollouts.  This
package makes that tractable at 10^5–10^6 vehicles:

* :mod:`repro.fleet.variants` — deterministic per-vehicle variants and
  RNG-free base worlds, snapshotted once per (variant, version);
* :mod:`repro.fleet.shard` — contiguous vehicle shards simulated over
  the warm executor, each reduced to one constant-size digest;
* :mod:`repro.fleet.summary` — the exact, commutative merge algebra
  (error-free sums, streaming histograms, bounded top-K) that keeps
  campaign memory O(shards) and digests byte-identical under any shard
  layout;
* :mod:`repro.fleet.service` — staged canary → cohort → fleet waves with
  digest-gated halt/rollback, plus admission control over the shared
  pool; checkpointed campaigns survive harness crashes and resume with
  byte-identical digests (:func:`resume_fleet_campaign`).
"""

from .service import (
    CampaignAdmission,
    FleetCampaign,
    FleetCampaignResult,
    FleetCampaignSpec,
    FleetService,
    WaveOutcome,
    resume_fleet_campaign,
    run_fleet_campaign,
)
from .shard import (
    TAG_NEW,
    TAG_OLD,
    FleetShardJob,
    FleetSpec,
    build_fleet_snapshots,
    run_fleet,
    simulate_vehicle,
)
from .summary import FleetDigest, StatSummary, TopK, merge_digests
from .variants import (
    VARIANT_TABLE,
    VehicleVariant,
    build_vehicle_world,
    variant_of,
)

__all__ = [
    "CampaignAdmission",
    "FleetCampaign",
    "FleetCampaignResult",
    "FleetCampaignSpec",
    "FleetDigest",
    "FleetService",
    "FleetShardJob",
    "FleetSpec",
    "StatSummary",
    "TAG_NEW",
    "TAG_OLD",
    "TopK",
    "VARIANT_TABLE",
    "VehicleVariant",
    "WaveOutcome",
    "build_fleet_snapshots",
    "build_vehicle_world",
    "merge_digests",
    "resume_fleet_campaign",
    "run_fleet",
    "run_fleet_campaign",
    "simulate_vehicle",
    "variant_of",
]
