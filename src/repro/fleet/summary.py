"""Constant-size mergeable summaries for fleet-scale aggregation.

A campaign over 10^5–10^6 vehicles cannot keep per-vehicle results: every
shard reduces its vehicles into a :class:`FleetDigest` — a fixed set of
counters, error-free sums (:func:`repro.obs.metrics.accumulate_exact`),
streaming histograms and a bounded top-K of worst offenders — and digests
merge shard → wave → campaign.  Campaign memory is O(shards), never
O(vehicles), and because every reduction is exact and commutative the
merged digest is byte-identical for any shard layout, worker count or
fork/rebuild path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..faults.report import ResilienceDigest, ResilienceReport
from ..obs.metrics import Histogram, accumulate_exact, exact_total


@dataclass
class StatSummary:
    """Streaming count/min/max/sum with an error-free sum.

    The sum is kept as Shewchuk partials, so folding values in any
    grouping (per vehicle, per shard, per wave) yields the same
    correctly rounded total — the property the determinism matrix
    (shards × workers × fork) relies on.
    """

    count: int = 0
    min: float = math.inf
    max: float = -math.inf
    _partials: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        accumulate_exact(self._partials, value)

    @property
    def sum(self) -> float:
        return exact_total(self._partials)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "StatSummary") -> None:
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for value in other._partials:
            accumulate_exact(self._partials, value)

    def to_json(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "min": 0.0, "max": 0.0, "sum": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "sum": self.sum,
            "mean": self.mean,
        }


@dataclass
class TopK:
    """Bounded worst-offender list; exact under disjoint-key merge.

    Entries are ``(score, key)`` kept sorted worst-first with ties broken
    by ascending key, so the retained set is a pure function of the
    entries offered.  Because any global top-k element is necessarily in
    its own shard's top-k, merging per-shard TopKs loses nothing.
    """

    k: int = 8
    entries: List[Tuple[float, int]] = field(default_factory=list)

    def add(self, key: int, score: float) -> None:
        self.entries.append((score, key))
        self._trim()

    def merge(self, other: "TopK") -> None:
        self.entries.extend(other.entries)
        self._trim()

    def _trim(self) -> None:
        self.entries.sort(key=lambda entry: (-entry[0], entry[1]))
        del self.entries[self.k:]

    def to_json(self) -> List[Dict[str, float]]:
        return [
            {"vehicle": key, "score": score} for score, key in self.entries
        ]


def _response_histogram() -> Histogram:
    """Label-free response-time histogram for cross-vehicle merging."""
    return Histogram("fleet.response", (), True)


@dataclass
class FleetDigest:
    """Mergeable reduction of many per-vehicle simulation outcomes.

    Everything in here is constant-size: scalar counters, a per-variant
    count map bounded by the variant table, one streaming histogram, one
    :class:`StatSummary`, one bounded :class:`TopK` and one
    :class:`~repro.faults.report.ResilienceDigest`.
    """

    vehicles: int = 0
    releases: int = 0
    deadline_misses: int = 0
    variant_counts: Dict[int, int] = field(default_factory=dict)
    #: distribution of per-vehicle miss ratios
    miss_ratio_stats: StatSummary = field(default_factory=StatSummary)
    #: all task response times across the fleet
    response: Histogram = field(default_factory=_response_histogram)
    #: worst vehicles by deadline-miss count
    worst: TopK = field(default_factory=TopK)
    resilience: ResilienceDigest = field(default_factory=ResilienceDigest)

    def observe_vehicle(
        self,
        index: int,
        variant_id: int,
        releases: int,
        misses: int,
        response_histograms: Tuple[Histogram, ...] = (),
        report: Optional[ResilienceReport] = None,
    ) -> None:
        """Fold one simulated vehicle's outcome into the digest."""
        self.vehicles += 1
        self.releases += releases
        self.deadline_misses += misses
        self.variant_counts[variant_id] = (
            self.variant_counts.get(variant_id, 0) + 1
        )
        self.miss_ratio_stats.observe(misses / releases if releases else 0.0)
        for histogram in response_histograms:
            self.response.merge(histogram)
        if misses:
            self.worst.add(index, float(misses))
        if report is not None:
            self.resilience.merge(ResilienceDigest.from_report(report))

    @property
    def miss_ratio(self) -> float:
        return self.deadline_misses / self.releases if self.releases else 0.0

    def merge(self, other: "FleetDigest") -> None:
        """Fold another digest in; commutative, exact, constant-size."""
        self.vehicles += other.vehicles
        self.releases += other.releases
        self.deadline_misses += other.deadline_misses
        for variant_id in sorted(other.variant_counts):
            self.variant_counts[variant_id] = (
                self.variant_counts.get(variant_id, 0)
                + other.variant_counts[variant_id]
            )
        self.miss_ratio_stats.merge(other.miss_ratio_stats)
        self.response.merge(other.response)
        self.worst.merge(other.worst)
        self.resilience.merge(other.resilience)

    def to_json(self) -> Dict[str, object]:
        """Deterministic JSON form; byte-identical for any merge order."""
        response: Dict[str, object] = {"count": self.response.count}
        if self.response.count:
            response.update(
                min=self.response.min,
                max=self.response.max,
                sum=self.response.sum,
                mean=self.response.sum / self.response.count,
                p50=self.response.quantile(0.5),
                p95=self.response.quantile(0.95),
                p99=self.response.quantile(0.99),
            )
        return {
            "vehicles": self.vehicles,
            "releases": self.releases,
            "deadline_misses": self.deadline_misses,
            "miss_ratio": self.miss_ratio,
            "variants": {
                str(k): self.variant_counts[k]
                for k in sorted(self.variant_counts)
            },
            "miss_ratio_stats": self.miss_ratio_stats.to_json(),
            "response": response,
            "worst": self.worst.to_json(),
            "resilience": self.resilience.to_json(),
        }


def merge_digests(digests: List[FleetDigest]) -> FleetDigest:
    """Reduce a list of digests into one (order-independent result)."""
    merged = FleetDigest()
    for digest in digests:
        merged.merge(digest)
    return merged
