"""Sharded per-vehicle simulation with streaming reduction.

One :class:`FleetShardJob` simulates a contiguous index range of the
fleet — forking each vehicle from the variant's snapshotted base world —
and folds every outcome into one :class:`~repro.fleet.summary.FleetDigest`
before returning.  Per-vehicle state never leaves the worker: the wire
carries O(1) bytes per shard, and the campaign merges digests
shard → wave → campaign.

Determinism contract: a vehicle's variant and seed derive from the
campaign's ``master_seed`` and the vehicle's **global** index (via
:func:`repro.exec.derive_item_seed`), never from the shard id, worker or
``JobContext`` seed — so any shard size × worker count × fork/rebuild
combination produces byte-identical digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exec.jobs import JobContext, SimJob, derive_item_seed
from ..faults.injector import FaultInjector
from ..faults.report import ResilienceReport, build_resilience_report
from ..faults.spec import FaultPlan, FaultSpec
from ..model.applications import AppModel
from ..osal.task import TaskSpec
from ..sim import Simulator
from .summary import FleetDigest, TopK
from .variants import (
    VARIANT_TABLE,
    VehicleVariant,
    build_vehicle_world,
    variant_of,
)

#: rollout tags: the version a vehicle runs during its soak
TAG_OLD = "old"
TAG_NEW = "new"

#: calibrated per-vehicle wall-clock estimate (seconds) for the cost model
VEHICLE_COST_HINT = 0.002


@dataclass(frozen=True)
class FleetSpec:
    """Picklable description of a simulated fleet and its two versions.

    ``regression_overrun`` > 0 arms the halt demo: the *new* version's
    task stretches its execution by that factor on every activation, so
    rolling it out floods the wave digest with deadline misses.
    """

    name: str = "fleet"
    size: int = 1000
    master_seed: int = 0
    #: simulated seconds each vehicle runs under observation
    soak_time: float = 0.1
    period: float = 0.005
    deadline: float = 0.004
    wcet: float = 0.001
    new_wcet: float = 0.001
    #: baseline uncertainty: fraction of activations stretched +50 %
    overrun_probability: float = 0.25
    #: rare heavy spike (activation stretched 41x) — the tail that makes
    #: some vehicles miss deadlines even on a healthy version
    spike_probability: float = 0.01
    spike_magnitude: float = 40.0
    #: >0 → the new version overruns every activation by this stretch
    regression_overrun: float = 0.0
    top_k: int = 8
    variant_table: Tuple[VehicleVariant, ...] = VARIANT_TABLE


def app_for(spec: FleetSpec, tag: str) -> AppModel:
    """The app model a vehicle runs under rollout ``tag``."""
    if tag == TAG_OLD:
        version, wcet, suffix = (1, 0), spec.wcet, ""
    elif tag == TAG_NEW:
        version, wcet, suffix = (2, 0), spec.new_wcet, "_v2"
    else:
        raise ValueError(f"unknown rollout tag {tag!r}")
    return AppModel(
        name="fleet_fn",
        tasks=(TaskSpec(
            name=f"fleet_loop{suffix}", period=spec.period, wcet=wcet,
            deadline=spec.deadline,
        ),),
        memory_kib=64, image_kib=128, version=version,
    )


def vehicle_plan(spec: FleetSpec, tag: str) -> FaultPlan:
    """The per-vehicle fault plan modelling field uncertainty.

    All windows are permanent over the soak; which activations are
    actually perturbed comes from the vehicle's own seeded streams, so
    every vehicle draws a different trajectory from the same plan.
    """
    faults: List[FaultSpec] = []
    if spec.overrun_probability > 0:
        faults.append(FaultSpec(
            kind="task_overrun", target="vecu", start=0.0, duration=0.0,
            magnitude=0.5, probability=spec.overrun_probability,
        ))
    if spec.spike_probability > 0:
        faults.append(FaultSpec(
            kind="task_overrun", target="vecu", start=0.0, duration=0.0,
            magnitude=spec.spike_magnitude,
            probability=spec.spike_probability,
        ))
    if tag == TAG_NEW and spec.regression_overrun > 0:
        faults.append(FaultSpec(
            kind="task_overrun", target="vecu", start=0.0, duration=0.0,
            magnitude=spec.regression_overrun, probability=1.0,
        ))
    return FaultPlan(name=f"fleet.{tag}", faults=tuple(faults))


def build_fleet_snapshots(
    spec: FleetSpec, tags: Tuple[str, ...] = (TAG_OLD, TAG_NEW)
) -> Dict[Tuple[int, str], object]:
    """One snapshotted base world per (variant, rollout tag).

    The whole map is shipped to each worker once as shared context;
    every vehicle then forks its variant's world instead of rebuilding.
    """
    snapshots: Dict[Tuple[int, str], object] = {}
    for variant in spec.variant_table:
        for tag in tags:
            sim = build_vehicle_world(variant, app_for(spec, tag))
            snapshots[(variant.variant_id, tag)] = sim.snapshot()
    return snapshots


def simulate_vehicle(
    spec: FleetSpec,
    index: int,
    tag: str,
    snapshots: Optional[Dict[Tuple[int, str], object]] = None,
) -> Tuple[VehicleVariant, int, int, Tuple, Optional[ResilienceReport]]:
    """Simulate one vehicle's soak; returns its digest contribution.

    With ``snapshots`` the variant's base world is forked (one C-speed
    unpickle); without, it is rebuilt from scratch — byte-identical
    either way because :func:`build_vehicle_world` is RNG-free.
    """
    variant = variant_of(spec.master_seed, index, spec.variant_table)
    seed = derive_item_seed(spec.master_seed, f"{spec.name}:{tag}", index)
    if snapshots is not None:
        sim: Simulator = snapshots[(variant.variant_id, tag)].restore()
        platform = sim.world["fleet_vehicle"]["platform"]
    else:
        sim = build_vehicle_world(variant, app_for(spec, tag))
        platform = sim.world["fleet_vehicle"]["platform"]
    plan = vehicle_plan(spec, tag)
    injector = None
    if plan.faults:
        injector = FaultInjector(sim, plan, seed, platform=platform).arm()
    sim.run(until=sim.now + spec.soak_time)
    releases = 0
    misses = 0
    histograms = []
    for node_name in sorted(platform.nodes):
        for core in platform.nodes[node_name].cores:
            releases += int(
                sim.metrics.counter("os.releases", core=core.name).value
            )
            misses += int(
                sim.metrics.counter(
                    "os.deadline_misses", core=core.name
                ).value
            )
            histograms.append(
                sim.metrics.histogram("os.response", core=core.name)
            )
    report = (
        build_resilience_report(injector=injector)
        if injector is not None else None
    )
    return variant, releases, misses, tuple(histograms), report


class FleetShardJob(SimJob):
    """Simulate vehicles ``[start, stop)`` and return one merged digest."""

    def __init__(
        self,
        job_id: str,
        spec: FleetSpec,
        start: int,
        stop: int,
        tag: str = TAG_OLD,
        fork: bool = True,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.start = start
        self.stop = stop
        self.tag = tag
        #: fork from the shared snapshot map (True) or rebuild each world
        self.fork = fork
        self.cost_hint = (stop - start) * VEHICLE_COST_HINT

    def run(self, ctx: JobContext) -> FleetDigest:
        snapshots = ctx.shared if self.fork else None
        if self.fork and snapshots is None:
            raise ValueError(
                f"shard {self.job_id} has fork=True but no snapshot map "
                f"was passed as shared context"
            )
        digest = FleetDigest(worst=TopK(k=self.spec.top_k))
        for index in range(self.start, self.stop):
            variant, releases, misses, histograms, report = simulate_vehicle(
                self.spec, index, self.tag, snapshots
            )
            digest.observe_vehicle(
                index, variant.variant_id, releases, misses, histograms,
                report,
            )
        return digest


@dataclass
class FleetRunResult:
    """Outcome of one sharded fleet run (a single tag, no waves)."""

    digest: FleetDigest
    shards: int
    vehicles: int
    digest_json: Dict[str, object] = field(default_factory=dict)


def run_fleet(
    spec: FleetSpec,
    *,
    executor=None,
    fork: bool = True,
    tag: str = TAG_OLD,
    shard_size: Optional[int] = None,
    snapshots: Optional[Dict[Tuple[int, str], object]] = None,
    start: int = 0,
    stop: Optional[int] = None,
    store=None,
) -> FleetRunResult:
    """Simulate vehicles ``[start, stop)`` sharded over ``executor``.

    The workhorse behind both the benchmark and the campaign service.
    Returns the merged digest; per-vehicle results never accumulate
    anywhere.

    ``store`` (a :class:`repro.exec.recovery.CheckpointStore`) makes the
    run durable: shard digests already recorded are loaded instead of
    re-simulated, fresh ones are persisted as they complete.  Shard job
    ids name the **global vehicle range** (``fleet.new.100-150``), so
    records from different waves of one campaign never collide in a
    shared store — and because vehicle seeds derive from global indices,
    a loaded digest is byte-identical to what recomputation would yield.
    """
    from ..exec.pool import get_inline_executor, plan_shards
    from ..exec.recovery import run_jobs_checkpointed

    if executor is None:
        executor = get_inline_executor()
    if stop is None:
        stop = spec.size
    count = stop - start
    if count <= 0:
        return FleetRunResult(digest=FleetDigest(), shards=0, vehicles=0)
    if shard_size is None:
        shards = executor.plan_shards(count)
    else:
        shards = plan_shards(count, shard_size)
    context = None
    if fork:
        context = snapshots if snapshots is not None else (
            build_fleet_snapshots(spec, tags=(tag,))
        )
    jobs = [
        FleetShardJob(
            job_id=f"{spec.name}.{tag}.{start + lo}-{start + hi}",
            spec=spec, start=start + lo, stop=start + hi, tag=tag,
            fork=fork,
        )
        for lo, hi in shards
    ]
    report = run_jobs_checkpointed(
        jobs, executor=executor, master_seed=spec.master_seed,
        context=context, store=store,
    )
    failed = [r for r in report.results if not r.ok]
    if failed:
        detail = "; ".join(f"{r.job_id}: {r.error}" for r in failed[:5])
        raise RuntimeError(
            f"{len(failed)}/{len(jobs)} fleet shards failed ({detail})"
        )
    digest = FleetDigest(worst=TopK(k=spec.top_k))
    for shard_digest in report.values:
        digest.merge(shard_digest)
    return FleetRunResult(
        digest=digest, shards=len(jobs), vehicles=digest.vehicles,
        digest_json=digest.to_json(),
    )
