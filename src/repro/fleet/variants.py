"""Deterministic vehicle variants drawn from the DSE-style variant space.

A fleet is never homogeneous: vehicles ship with different ECU trims.
Each vehicle's variant is derived from the campaign seed and the
vehicle's **global** index alone (never its shard), so any shard layout
sees the same fleet.  Per variant there is one canonical base world —
built RNG-free, snapshotted once, forked per vehicle — mirroring the
fork-site pattern of :mod:`repro.core.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.platform import DynamicPlatform
from ..hw.ecu import CryptoCapability, OsClass
from ..hw.topology import BusSpec, EcuSpec, Topology
from ..model.applications import AppModel
from ..obs.metrics import MetricsRegistry
from ..security.crypto import TrustStore
from ..security.package import build_package
from ..sim import Simulator
from ..sim.rng import _derive_seed


@dataclass(frozen=True)
class VehicleVariant:
    """One ECU trim level in the fleet's variant space."""

    variant_id: int
    name: str
    cpu_mhz: float
    cores: int = 1


#: Default trim levels.  ``cpu_mhz`` scales task execution times through
#: :attr:`repro.hw.topology.EcuSpec.speed_factor`, so the same app model
#: produces visibly different response-time distributions per variant.
VARIANT_TABLE: Tuple[VehicleVariant, ...] = (
    VehicleVariant(0, "economy", 400.0),
    VehicleVariant(1, "standard", 600.0),
    VehicleVariant(2, "premium", 800.0),
    VehicleVariant(3, "performance", 1000.0),
)


def variant_of(
    seed: int,
    index: int,
    table: Tuple[VehicleVariant, ...] = VARIANT_TABLE,
) -> VehicleVariant:
    """The variant vehicle ``index`` ships with, under ``seed``.

    Derived from the campaign seed and global vehicle index via the same
    SHA-256 scheme as :func:`repro.exec.derive_item_seed` — shard- and
    worker-independent by construction.
    """
    return table[_derive_seed(seed, f"fleet.variant:{index}") % len(table)]


def vehicle_topology(variant: VehicleVariant) -> Topology:
    """Minimal single-ECU vehicle topology for one variant."""
    topo = Topology(f"fleet_vehicle_{variant.name}")
    topo.add_bus(BusSpec("veth", "ethernet", 1e9, tsn_capable=True))
    topo.add_ecu(EcuSpec(
        "vecu", cpu_mhz=variant.cpu_mhz, cores=variant.cores,
        memory_kib=1 << 18, flash_kib=1 << 20, has_mmu=True,
        os_class=OsClass.POSIX_RT, crypto=CryptoCapability.ACCELERATED,
        ports=(("eth0", "ethernet"),),
    ))
    topo.attach("vecu", "eth0", "veth")
    return topo


def build_vehicle_world(variant: VehicleVariant, app: AppModel) -> Simulator:
    """Build one deployed, started, *not yet run* vehicle world.

    RNG-free and deterministic: the fork path (restore this world's
    snapshot) and the rebuild path (call this again) yield byte-identical
    simulators.  The app is installed and started but the world is
    snapshotted before any task activation, so every release, response
    time and deadline miss observed later is attributable to the
    per-vehicle soak — no base-run baseline to subtract.
    """
    sim = Simulator(metrics=MetricsRegistry())
    store = TrustStore()
    store.generate_key("oem")
    platform = DynamicPlatform(sim, vehicle_topology(variant),
                               trust_store=store)
    platform.install(build_package(app, store, "oem"), "vecu")
    sim.run(until=sim.now + 1.0)
    platform.start_app(app.name, "vecu")
    # fleet digests read exact aggregate counters, not per-job history;
    # bound the history so snapshots stay small at any soak length
    for node in platform.nodes.values():
        for core in node.cores:
            core.job_history_limit = 16
    base: Dict[str, object] = {"platform": platform, "app": app}
    sim.adopt("fleet_vehicle", base)
    return sim
