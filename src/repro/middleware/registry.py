"""Service registry and discovery.

The registry answers *find-service* queries and administers event-group
subscriptions.  It also carries the security integration point: a
**binding guard** — installed by :mod:`repro.security.access_control` —
is consulted before any client/service binding is created, implementing
the paper's Section 4.2 requirement that "the binding partners are
authenticated and that communication is authorized".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SecurityError

#: Guard signature: (client_app, client_ecu, service_id) -> allowed?
BindingGuard = Callable[[str, str, int], bool]


@dataclass(frozen=True)
class ServiceOffer:
    """A service instance offered on the network."""

    service_id: int
    instance_id: int
    ecu: str
    provider_app: str
    version: Tuple[int, int] = (1, 0)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.service_id, self.instance_id)


@dataclass
class Subscription:
    """One client's subscription to an eventgroup of a service."""

    service_id: int
    eventgroup: int
    client_app: str
    client_ecu: str
    active: bool = True


class ServiceRegistry:
    """Logically centralised service directory.

    Physically, SOME/IP-SD is a multicast protocol; its discovery latency
    is modelled by the endpoints (they exchange FIND/OFFER messages over
    the simulated network before using the directory answer).  The
    directory itself holds the authoritative state.
    """

    def __init__(self) -> None:
        self._offers: Dict[Tuple[int, int], ServiceOffer] = {}
        self._subscriptions: List[Subscription] = []
        self._guard: Optional[BindingGuard] = None
        self.denied_bindings = 0

    # -- security hook --------------------------------------------------------

    def set_binding_guard(self, guard: Optional[BindingGuard]) -> None:
        """Install (or clear) the authorization guard for new bindings."""
        self._guard = guard

    def _check_binding(self, client_app: str, client_ecu: str, service_id: int) -> None:
        if self._guard is not None and not self._guard(
            client_app, client_ecu, service_id
        ):
            self.denied_bindings += 1
            raise SecurityError(
                f"binding of {client_app!r}@{client_ecu} to service "
                f"{service_id:#06x} denied"
            )

    # -- offers ----------------------------------------------------------------

    def offer(self, offer: ServiceOffer) -> None:
        """Register a service instance.  Re-offering replaces the entry."""
        self._offers[offer.key] = offer

    def withdraw(self, service_id: int, instance_id: int) -> None:
        """Remove an offer (provider stopping or failing)."""
        self._offers.pop((service_id, instance_id), None)

    def withdraw_all_of_ecu(self, ecu: str) -> int:
        """Drop every offer hosted on ``ecu`` (ECU failure). Returns count."""
        doomed = [k for k, o in self._offers.items() if o.ecu == ecu]
        for key in doomed:
            del self._offers[key]
        return len(doomed)

    def find(
        self,
        service_id: int,
        *,
        client_app: str = "",
        client_ecu: str = "",
        instance_id: Optional[int] = None,
    ) -> ServiceOffer:
        """Resolve a service id to an offer, enforcing the binding guard.

        Raises:
            ConfigurationError: if no instance of the service is offered.
            SecurityError: if the binding guard denies the client.
        """
        self._check_binding(client_app, client_ecu, service_id)
        candidates = [
            o
            for o in self._offers.values()
            if o.service_id == service_id
            and (instance_id is None or o.instance_id == instance_id)
        ]
        if not candidates:
            raise ConfigurationError(f"service {service_id:#06x} not offered")
        candidates.sort(key=lambda o: o.instance_id)
        return candidates[0]

    def instances_of(self, service_id: int) -> List[ServiceOffer]:
        """All offered instances of a service (for redundancy failover)."""
        return sorted(
            (o for o in self._offers.values() if o.service_id == service_id),
            key=lambda o: o.instance_id,
        )

    @property
    def offers(self) -> List[ServiceOffer]:
        return list(self._offers.values())

    # -- subscriptions ------------------------------------------------------------

    def subscribe(
        self, service_id: int, eventgroup: int, client_app: str, client_ecu: str
    ) -> Subscription:
        """Create (or reactivate) a subscription, enforcing the guard."""
        self._check_binding(client_app, client_ecu, service_id)
        for sub in self._subscriptions:
            if (
                sub.service_id == service_id
                and sub.eventgroup == eventgroup
                and sub.client_app == client_app
                and sub.client_ecu == client_ecu
            ):
                sub.active = True
                return sub
        sub = Subscription(service_id, eventgroup, client_app, client_ecu)
        self._subscriptions.append(sub)
        return sub

    def unsubscribe(self, service_id: int, eventgroup: int, client_app: str) -> None:
        for sub in self._subscriptions:
            if (
                sub.service_id == service_id
                and sub.eventgroup == eventgroup
                and sub.client_app == client_app
            ):
                sub.active = False

    def subscribers(self, service_id: int, eventgroup: int) -> List[Subscription]:
        """Active subscriptions for a service/eventgroup."""
        return [
            s
            for s in self._subscriptions
            if s.service_id == service_id
            and s.eventgroup == eventgroup
            and s.active
        ]

    def subscriptions_of(self, client_app: str) -> List[Subscription]:
        return [s for s in self._subscriptions if s.client_app == client_app]
