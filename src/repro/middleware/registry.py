"""Service registry and discovery.

The registry answers *find-service* queries and administers event-group
subscriptions.  It also carries the security integration point: a
**binding guard** — installed by :mod:`repro.security.access_control` —
is consulted before any client/service binding is created, implementing
the paper's Section 4.2 requirement that "the binding partners are
authenticated and that communication is authorized".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SecurityError

#: Guard signature: (client_app, client_ecu, service_id) -> allowed?
BindingGuard = Callable[[str, str, int], bool]


@dataclass(frozen=True)
class ServiceOffer:
    """A service instance offered on the network."""

    service_id: int
    instance_id: int
    ecu: str
    provider_app: str
    version: Tuple[int, int] = (1, 0)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.service_id, self.instance_id)


class CircuitBreaker:
    """Per-offer circuit breaker protecting clients from a sick provider.

    Classic three-state machine: **closed** (traffic flows; consecutive
    failures are counted), **open** (calls fast-fail without touching the
    network) and **half-open** (after ``reset_timeout`` one probe call is
    let through; its outcome closes or re-opens the circuit).

    The breaker is simulation-agnostic: callers pass the current time
    explicitly, so the registry needs no simulator reference.
    """

    __slots__ = (
        "failure_threshold",
        "reset_timeout",
        "state",
        "consecutive_failures",
        "opened_at",
        "times_opened",
        "fast_failures",
    )

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 3, reset_timeout: float = 0.5) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("breaker failure threshold must be >= 1")
        if reset_timeout <= 0:
            raise ConfigurationError("breaker reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.times_opened = 0
        self.fast_failures = 0

    def allow(self, now: float) -> bool:
        """May a call go out right now?  Counts fast-failed rejections."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                # the reset timer elapsed: admit exactly one probe call
                self.state = self.HALF_OPEN
                return True
            self.fast_failures += 1
            return False
        # half-open: a probe is already in flight — hold further calls
        self.fast_failures += 1
        return False

    def record_success(self, now: float) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != self.OPEN:
                self.times_opened += 1
            self.state = self.OPEN
            self.opened_at = now


@dataclass
class Subscription:
    """One client's subscription to an eventgroup of a service."""

    service_id: int
    eventgroup: int
    client_app: str
    client_ecu: str
    active: bool = True


class ServiceRegistry:
    """Logically centralised service directory.

    Physically, SOME/IP-SD is a multicast protocol; its discovery latency
    is modelled by the endpoints (they exchange FIND/OFFER messages over
    the simulated network before using the directory answer).  The
    directory itself holds the authoritative state.
    """

    def __init__(self) -> None:
        self._offers: Dict[Tuple[int, int], ServiceOffer] = {}
        self._subscriptions: List[Subscription] = []
        self._guard: Optional[BindingGuard] = None
        self.denied_bindings = 0
        #: (service_id, provider ecu) -> CircuitBreaker; populated lazily
        #: once breakers are configured, empty (and bypassed) otherwise
        self._breakers: Dict[Tuple[int, str], CircuitBreaker] = {}
        self._breaker_config: Optional[Tuple[int, float]] = None

    # -- circuit breaking ------------------------------------------------------

    def configure_breakers(
        self, *, failure_threshold: int = 3, reset_timeout: float = 0.5
    ) -> None:
        """Enable per-offer circuit breakers (opt-in; off by default).

        Each ``(service_id, provider ecu)`` pair gets its own breaker the
        first time a client asks for it.  Reconfiguring clears existing
        breaker state.
        """
        self._breaker_config = (failure_threshold, reset_timeout)
        self._breakers.clear()

    def breaker_for(self, service_id: int, ecu: str) -> Optional[CircuitBreaker]:
        """The breaker guarding ``service_id`` on ``ecu``; ``None`` while
        breakers are not configured."""
        config = self._breaker_config
        if config is None:
            return None
        key = (service_id, ecu)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                failure_threshold=config[0], reset_timeout=config[1]
            )
        return breaker

    def breakers_opened(self) -> int:
        """Total circuit-open transitions across all offers."""
        return sum(b.times_opened for b in self._breakers.values())

    def breaker_fast_failures(self) -> int:
        """Total calls rejected without touching the network."""
        return sum(b.fast_failures for b in self._breakers.values())

    # -- security hook --------------------------------------------------------

    def set_binding_guard(self, guard: Optional[BindingGuard]) -> None:
        """Install (or clear) the authorization guard for new bindings."""
        self._guard = guard

    def _check_binding(self, client_app: str, client_ecu: str, service_id: int) -> None:
        if self._guard is not None and not self._guard(
            client_app, client_ecu, service_id
        ):
            self.denied_bindings += 1
            raise SecurityError(
                f"binding of {client_app!r}@{client_ecu} to service "
                f"{service_id:#06x} denied"
            )

    # -- offers ----------------------------------------------------------------

    def offer(self, offer: ServiceOffer) -> None:
        """Register a service instance.  Re-offering replaces the entry."""
        self._offers[offer.key] = offer

    def withdraw(self, service_id: int, instance_id: int) -> None:
        """Remove an offer (provider stopping or failing)."""
        self._offers.pop((service_id, instance_id), None)

    def withdraw_all_of_ecu(self, ecu: str) -> int:
        """Drop every offer hosted on ``ecu`` (ECU failure). Returns count."""
        doomed = [k for k, o in self._offers.items() if o.ecu == ecu]
        for key in doomed:
            del self._offers[key]
        return len(doomed)

    def find(
        self,
        service_id: int,
        *,
        client_app: str = "",
        client_ecu: str = "",
        instance_id: Optional[int] = None,
    ) -> ServiceOffer:
        """Resolve a service id to an offer, enforcing the binding guard.

        Raises:
            ConfigurationError: if no instance of the service is offered.
            SecurityError: if the binding guard denies the client.
        """
        self._check_binding(client_app, client_ecu, service_id)
        candidates = [
            o
            for o in self._offers.values()
            if o.service_id == service_id
            and (instance_id is None or o.instance_id == instance_id)
        ]
        if not candidates:
            raise ConfigurationError(f"service {service_id:#06x} not offered")
        candidates.sort(key=lambda o: o.instance_id)
        return candidates[0]

    def instances_of(self, service_id: int) -> List[ServiceOffer]:
        """All offered instances of a service (for redundancy failover)."""
        return sorted(
            (o for o in self._offers.values() if o.service_id == service_id),
            key=lambda o: o.instance_id,
        )

    @property
    def offers(self) -> List[ServiceOffer]:
        return list(self._offers.values())

    # -- subscriptions ------------------------------------------------------------

    def subscribe(
        self, service_id: int, eventgroup: int, client_app: str, client_ecu: str
    ) -> Subscription:
        """Create (or reactivate) a subscription, enforcing the guard."""
        self._check_binding(client_app, client_ecu, service_id)
        for sub in self._subscriptions:
            if (
                sub.service_id == service_id
                and sub.eventgroup == eventgroup
                and sub.client_app == client_app
                and sub.client_ecu == client_ecu
            ):
                sub.active = True
                return sub
        sub = Subscription(service_id, eventgroup, client_app, client_ecu)
        self._subscriptions.append(sub)
        return sub

    def unsubscribe(self, service_id: int, eventgroup: int, client_app: str) -> None:
        for sub in self._subscriptions:
            if (
                sub.service_id == service_id
                and sub.eventgroup == eventgroup
                and sub.client_app == client_app
            ):
                sub.active = False

    def subscribers(self, service_id: int, eventgroup: int) -> List[Subscription]:
        """Active subscriptions for a service/eventgroup."""
        return [
            s
            for s in self._subscriptions
            if s.service_id == service_id
            and s.eventgroup == eventgroup
            and s.active
        ]

    def subscriptions_of(self, client_app: str) -> List[Subscription]:
        return [s for s in self._subscriptions if s.client_app == client_app]
