"""SOME/IP-style wire format and transport segmentation.

Messages between applications are "no longer based on signals defined by
bit offsets, but on complex objects" (Section 2.2).  The middleware frames
every message with a SOME/IP-like header and segments it to fit the
smallest MTU along the route (ISO-TP style on CAN, plain fragmentation on
Ethernet).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..errors import NetworkError

#: SOME/IP header: message id (4) + length (4) + request id (4) +
#: protocol/interface version, message type, return code (4).
HEADER_BYTES = 16

#: Effective payload bytes per CAN frame under ISO-TP style segmentation
#: (one byte of each 8-byte frame is consumed by the transport protocol).
CAN_SEGMENT_PAYLOAD = 7

#: Effective payload per Ethernet frame (MTU minus middleware header).
ETH_SEGMENT_PAYLOAD = 1400

#: Effective payload per FlexRay dynamic-segment frame.
FLEXRAY_SEGMENT_PAYLOAD = 254


class MessageType(Enum):
    """SOME/IP message types used by the three paradigms."""

    REQUEST = "request"               # RPC call expecting a response
    RESPONSE = "response"             # RPC response
    NOTIFICATION = "notification"     # event publication
    STREAM_SAMPLE = "stream_sample"   # one sample of a stream
    SUBSCRIBE = "subscribe"           # eventgroup subscription
    SUBSCRIBE_ACK = "subscribe_ack"
    FIND_SERVICE = "find_service"     # service discovery
    OFFER_SERVICE = "offer_service"


class ReturnCode(Enum):
    OK = "ok"
    NOT_REACHABLE = "not_reachable"
    NOT_AUTHORIZED = "not_authorized"
    UNKNOWN_SERVICE = "unknown_service"
    UNKNOWN_METHOD = "unknown_method"
    ERROR = "error"


# Fallback for standalone Message construction (tests, docs).  Production
# paths always pass session_id=sim.next_session_id() explicitly: a
# process-global counter would make forked simulations diverge from their
# parent's traces (see repro.sim.snapshot).
_session_ids = itertools.count(1)


@dataclass
class Message:
    """One middleware message (possibly larger than any single frame).

    Attributes:
        service_id: the service this message belongs to.
        method_id: method (RPC), eventgroup (notification) or channel id.
        msg_type: see :class:`MessageType`.
        payload_bytes: size of the serialised complex object.
        payload: the object itself (carried opaquely by the simulation).
        src / dst: application-level endpoint ECU names.
        session_id: correlates requests with responses.
        return_code: set on responses.
    """

    service_id: int
    method_id: int
    msg_type: MessageType
    payload_bytes: int
    src: str
    dst: str
    payload: object = None
    session_id: int = field(default_factory=lambda: next(_session_ids))
    return_code: ReturnCode = ReturnCode.OK
    sequence: Optional[int] = None  # stream sample ordering
    sender_app: str = ""
    #: simulated time the endpoint accepted the message for transmission
    #: (stamped by :meth:`repro.middleware.endpoint.Endpoint.send`)
    sent_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise NetworkError("message payload size cannot be negative")

    @property
    def total_bytes(self) -> int:
        """Payload plus the middleware header."""
        return self.payload_bytes + HEADER_BYTES


#: Effective per-frame payload by bus technology (hot-path lookup table).
SEGMENT_PAYLOADS = {
    "can": CAN_SEGMENT_PAYLOAD,
    "ethernet": ETH_SEGMENT_PAYLOAD,
    "flexray": FLEXRAY_SEGMENT_PAYLOAD,
}


def segment_payload_for(technology: str) -> int:
    """Effective per-frame payload for a bus technology."""
    try:
        return SEGMENT_PAYLOADS[technology]
    except KeyError:
        raise NetworkError(f"unknown technology {technology!r}") from None


def segments_needed(total_bytes: int, segment_payload: int) -> int:
    """Number of frames needed to move ``total_bytes``."""
    if segment_payload <= 0:
        raise NetworkError("segment payload must be positive")
    if total_bytes <= 0:
        return 1  # header-only message still needs one frame
    return -(-total_bytes // segment_payload)  # ceil division


def plan_segment_sizes(total_bytes: int, min_segment: int, can_route: bool) -> list:
    """Per-frame payload sizes (bytes on the wire of each frame).

    ``min_segment`` is the smallest effective segment payload along the
    route; ``can_route`` selects ISO-TP framing (one transport byte per
    8-byte CAN frame).  A pure function of its inputs, so endpoints can
    cache the ``(min_segment, can_route)`` pair per route and re-plan
    per message size without re-resolving the route.
    """
    n_segments = segments_needed(total_bytes, min_segment)
    sizes = []
    remaining = total_bytes
    for _ in range(n_segments):
        seg = min(min_segment, remaining) if remaining > 0 else 0
        remaining -= seg
        # ISO-TP style: one transport byte per CAN frame
        sizes.append(min(seg + 1, 8) if can_route else max(seg, 1))
    return sizes
