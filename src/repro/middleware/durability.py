"""DDS-style QoS extensions for the event paradigm.

Section 2.1 lists DDS next to SOME/IP as a middleware candidate; its
signature QoS policies matter for dynamic platforms because apps join at
runtime: a late-joining subscriber of a state-like topic must not wait a
full period (or forever, for change-driven topics) for its first value.

* :class:`DurableEventProducer` — keeps a bounded history per eventgroup
  and replays the retained samples to every new subscriber
  (``TRANSIENT_LOCAL`` durability with ``KEEP_LAST`` history);
* :class:`DeadlineMonitor` — the DDS deadline QoS: flags a topic whose
  inter-publication gap exceeds the declared deadline (feeds the runtime
  monitor / diagnosis story).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim import Signal
from .endpoint import Endpoint, QOS_DEFAULT, QoS
from .paradigms import EventProducer
from .wire import Message, MessageType


class DurableEventProducer(EventProducer):
    """Event producer with TRANSIENT_LOCAL durability.

    The last ``history_depth`` published samples are retained; whenever a
    new subscriber's SUBSCRIBE arrives, the retained samples are replayed
    to it (oldest first) before any new publication reaches it.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        eventgroup: int,
        *,
        provider_app: str,
        history_depth: int = 1,
        instance_id: int = 1,
    ) -> None:
        if history_depth < 1:
            raise ConfigurationError("history depth must be >= 1")
        super().__init__(
            endpoint, service_id, eventgroup,
            provider_app=provider_app, instance_id=instance_id,
        )
        self.history_depth = history_depth
        self._history: Deque[Tuple[object, int]] = deque(maxlen=history_depth)
        self.replays = 0

    def publish(
        self, payload: object, payload_bytes: int, qos: QoS = QOS_DEFAULT
    ) -> List[Signal]:
        self._history.append((payload, payload_bytes))
        return super().publish(payload, payload_bytes, qos)

    def _on_subscribe(self, message: Message) -> None:
        super()._on_subscribe(message)
        # replay retained samples to the new subscriber only
        for payload, payload_bytes in self._history:
            note = Message(
                service_id=self.service_id,
                method_id=self.eventgroup,
                msg_type=MessageType.NOTIFICATION,
                payload_bytes=payload_bytes,
                src=self.endpoint.ecu_name,
                dst=message.src,
                payload=payload,
                sender_app=self.provider_app,
                session_id=self.endpoint.sim.next_session_id(),
            )
            self.replays += 1
            self.endpoint.send(note, QOS_DEFAULT)


@dataclass
class DeadlineViolation:
    """One missed publication deadline on a monitored topic."""

    time: float
    service_id: int
    gap: float
    deadline: float


class DeadlineMonitor:
    """DDS deadline QoS: watch the publication cadence of a topic."""

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        deadline: float,
        *,
        on_violation: Optional[Callable[[DeadlineViolation], None]] = None,
    ) -> None:
        if deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        self.endpoint = endpoint
        self.service_id = service_id
        self.deadline = deadline
        self.on_violation = on_violation
        self.violations: List[DeadlineViolation] = []
        self._last_seen: Optional[float] = None
        self._watchdog_armed = False
        endpoint.on_message(service_id, MessageType.NOTIFICATION, self._on_note)

    def _on_note(self, message: Message) -> None:
        now = self.endpoint.sim.now
        if self._last_seen is not None:
            gap = now - self._last_seen
            if gap > self.deadline + 1e-12:
                self._record(now, gap)
        self._last_seen = now
        self._arm_watchdog()

    def _arm_watchdog(self) -> None:
        if self._watchdog_armed:
            return
        self._watchdog_armed = True
        self.endpoint.sim.schedule(self.deadline * 1.001, self._check)

    def _check(self) -> None:
        self._watchdog_armed = False
        now = self.endpoint.sim.now
        if self._last_seen is None:
            return
        gap = now - self._last_seen
        if gap > self.deadline + 1e-12:
            # topic went silent: record once and park the watchdog; the
            # next publication re-arms it (also keeps idle sims drainable)
            self._record(now, gap)
            return
        self._arm_watchdog()

    def _record(self, now: float, gap: float) -> None:
        violation = DeadlineViolation(
            time=now, service_id=self.service_id, gap=gap,
            deadline=self.deadline,
        )
        self.violations.append(violation)
        if self.on_violation is not None:
            self.on_violation(violation)
