"""The three communication paradigms of Section 2.1 / Figure 3.

* **Event** — one-way publish/subscribe.  The interface owner is the
  *producer*; consumers subscribe to a topic and receive notifications.
* **Message** — two-way request/response enabling RPC.  The interface
  owner is the *consumer offering the service*.
* **Stream** — one-way continuous data where each sample depends on its
  predecessors; the sink only releases a sample once every earlier sample
  has arrived (head-of-line semantics of a codec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, NetworkError
from ..sim import Signal
from .endpoint import Endpoint, QOS_DEFAULT, QoS
from .registry import ServiceOffer
from .wire import Message, MessageType, ReturnCode


# ---------------------------------------------------------------------------
# Event paradigm
# ---------------------------------------------------------------------------


class EventProducer:
    """Owner side of an event interface: offers a topic, publishes data."""

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        eventgroup: int,
        *,
        provider_app: str,
        instance_id: int = 1,
    ) -> None:
        self.endpoint = endpoint
        self.service_id = service_id
        self.eventgroup = eventgroup
        self.provider_app = provider_app
        self.published = 0
        endpoint.registry.offer(
            ServiceOffer(
                service_id=service_id,
                instance_id=instance_id,
                ecu=endpoint.ecu_name,
                provider_app=provider_app,
            )
        )
        endpoint.on_message(service_id, MessageType.SUBSCRIBE, self._on_subscribe)

    def _on_subscribe(self, message: Message) -> None:
        ack = Message(
            service_id=self.service_id,
            method_id=self.eventgroup,
            msg_type=MessageType.SUBSCRIBE_ACK,
            payload_bytes=8,
            src=self.endpoint.ecu_name,
            dst=message.src,
            session_id=self.endpoint.sim.next_session_id(),
        )
        self.endpoint.send(ack, QOS_DEFAULT)

    def publish(
        self, payload: object, payload_bytes: int, qos: QoS = QOS_DEFAULT
    ) -> List[Signal]:
        """Send a notification to every active subscriber.

        Returns one delivery signal per subscriber (empty list if nobody
        listens — publishing into the void is legal).
        """
        self.published += 1
        signals = []
        for sub in self.endpoint.registry.subscribers(
            self.service_id, self.eventgroup
        ):
            note = Message(
                service_id=self.service_id,
                method_id=self.eventgroup,
                msg_type=MessageType.NOTIFICATION,
                payload_bytes=payload_bytes,
                src=self.endpoint.ecu_name,
                dst=sub.client_ecu,
                payload=payload,
                sender_app=self.provider_app,
                session_id=self.endpoint.sim.next_session_id(),
            )
            signals.append(self.endpoint.send(note, qos))
        return signals


class EventConsumer:
    """Consumer side: subscribes to a topic and receives notifications."""

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        eventgroup: int,
        *,
        client_app: str,
        on_data: Callable[[Message], None],
    ) -> None:
        self.endpoint = endpoint
        self.service_id = service_id
        self.eventgroup = eventgroup
        self.client_app = client_app
        self.on_data = on_data
        self.received = 0
        self.subscribed = endpoint.sim.signal(name=f"sub.{service_id:04x}")
        endpoint.on_message(service_id, MessageType.NOTIFICATION, self._on_note)
        endpoint.on_message(service_id, MessageType.SUBSCRIBE_ACK, self._on_ack)
        self._subscribe()

    def _subscribe(self) -> None:
        # registry side first (authorization enforced here) ...
        offer = self.endpoint.registry.find(
            self.service_id,
            client_app=self.client_app,
            client_ecu=self.endpoint.ecu_name,
        )
        self.endpoint.registry.subscribe(
            self.service_id, self.eventgroup, self.client_app, self.endpoint.ecu_name
        )
        # ... then the on-wire subscribe round trip
        sub = Message(
            service_id=self.service_id,
            method_id=self.eventgroup,
            msg_type=MessageType.SUBSCRIBE,
            payload_bytes=16,
            src=self.endpoint.ecu_name,
            dst=offer.ecu,
            sender_app=self.client_app,
            session_id=self.endpoint.sim.next_session_id(),
        )
        self.endpoint.send(sub, QOS_DEFAULT)

    def _on_ack(self, message: Message) -> None:
        if not self.subscribed.fired:
            self.subscribed.fire(message)

    def _on_note(self, message: Message) -> None:
        self.received += 1
        self.on_data(message)

    def unsubscribe(self) -> None:
        self.endpoint.registry.unsubscribe(
            self.service_id, self.eventgroup, self.client_app
        )


# ---------------------------------------------------------------------------
# Message (RPC) paradigm
# ---------------------------------------------------------------------------


class RpcServer:
    """Owner side of a message interface: offers callable methods."""

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        *,
        provider_app: str,
        instance_id: int = 1,
    ) -> None:
        self.endpoint = endpoint
        self.service_id = service_id
        self.provider_app = provider_app
        self._methods: Dict[int, Callable[[Message], object]] = {}
        self._method_latency: Dict[int, float] = {}
        self.calls_served = 0
        endpoint.registry.offer(
            ServiceOffer(
                service_id=service_id,
                instance_id=instance_id,
                ecu=endpoint.ecu_name,
                provider_app=provider_app,
            )
        )
        endpoint.on_message(service_id, MessageType.REQUEST, self._on_request)

    def register_method(
        self,
        method_id: int,
        handler: Callable[[Message], object],
        *,
        latency: float = 0.0,
    ) -> None:
        """Expose ``handler`` as method ``method_id``.

        ``latency`` models the provider-side processing time before the
        response goes out.
        """
        self._methods[method_id] = handler
        self._method_latency[method_id] = latency

    def _on_request(self, request: Message) -> None:
        handler = self._methods.get(request.method_id)
        if handler is None:
            self._respond(request, None, 0, ReturnCode.UNKNOWN_METHOD)
            return
        latency = self._method_latency[request.method_id]
        if latency > 0:
            self.endpoint.sim.schedule(latency, self._serve, request, handler)
        else:
            self._serve(request, handler)

    def _serve(self, request: Message, handler: Callable[[Message], object]) -> None:
        self.calls_served += 1
        result = handler(request)
        payload_bytes = 8
        if isinstance(result, tuple) and len(result) == 2:
            result, payload_bytes = result
        self._respond(request, result, payload_bytes, ReturnCode.OK)

    def _respond(
        self,
        request: Message,
        payload: object,
        payload_bytes: int,
        code: ReturnCode,
    ) -> None:
        response = Message(
            service_id=self.service_id,
            method_id=request.method_id,
            msg_type=MessageType.RESPONSE,
            payload_bytes=payload_bytes,
            src=self.endpoint.ecu_name,
            dst=request.src,
            payload=payload,
            session_id=request.session_id,
            return_code=code,
            sender_app=self.provider_app,
        )
        self.endpoint.send(response, QOS_DEFAULT)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff for :meth:`RpcClient.call`.

    Attributes:
        max_attempts: total attempts, including the first (>= 1).
        backoff: wait after the first failed attempt, in seconds.
        backoff_factor: multiplier applied to the wait per further failure.
        deadline: optional *total* time budget across all attempts and
            backoffs, measured from the original ``call``; once spent, the
            call fails even if attempts remain.
    """

    max_attempts: int = 3
    backoff: float = 0.005
    backoff_factor: float = 2.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry policy needs max_attempts >= 1")
        if self.backoff < 0:
            raise ConfigurationError("retry backoff cannot be negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("retry backoff factor must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("retry deadline budget must be positive")

    def backoff_for(self, attempt: int) -> float:
        """Backoff to wait after failed attempt number ``attempt`` (1-based)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


class RpcClient:
    """Caller side of a message interface.

    Optionally resilient: a :class:`RetryPolicy` adds bounded retries with
    exponential backoff under a total deadline budget, and when the
    registry has circuit breakers configured, calls consult the breaker of
    the resolved offer — an open circuit fast-fails the attempt without
    touching the network.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        *,
        client_app: str,
    ) -> None:
        self.endpoint = endpoint
        self.service_id = service_id
        self.client_app = client_app
        #: session -> (result signal, expire timer, breaker, attempt context)
        self._pending: Dict[int, Tuple] = {}
        self.calls_made = 0
        self.attempts_made = 0
        self.timeouts = 0
        self.retries = 0
        self.failures = 0
        self.breaker_fastfails = 0
        metrics = endpoint.sim.metrics
        label = f"{service_id:04x}"
        self._m_timeouts = metrics.counter("rpc.timeouts", service=label)
        self._m_retries = metrics.counter("rpc.retries", service=label)
        self._m_fastfails = metrics.counter("rpc.breaker_fastfail", service=label)
        self._m_failures = metrics.counter("rpc.failures", service=label)
        endpoint.on_message(service_id, MessageType.RESPONSE, self._on_response)

    def call(
        self,
        method_id: int,
        payload: object = None,
        payload_bytes: int = 16,
        *,
        qos: QoS = QOS_DEFAULT,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Signal:
        """Invoke a method; the signal fires with the response message.

        On timeout — or once every retry attempt is exhausted — the signal
        fires with ``None`` instead.  ``retry`` requires ``timeout`` (the
        per-attempt timeout is what detects a lost attempt).
        """
        if retry is not None and timeout is None:
            raise ConfigurationError(
                "a retrying call needs a per-attempt timeout"
            )
        self.calls_made += 1
        result = self.endpoint.sim.signal(name=f"rpc.{self.service_id:04x}")
        self._attempt(
            result, method_id, payload, payload_bytes, qos, timeout, retry,
            self.endpoint.sim.now, 1,
        )
        return result

    # -- attempt machinery -------------------------------------------------

    def _attempt(
        self,
        result: Signal,
        method_id: int,
        payload: object,
        payload_bytes: int,
        qos: QoS,
        timeout: Optional[float],
        retry: Optional[RetryPolicy],
        started: float,
        attempt: int,
    ) -> None:
        sim = self.endpoint.sim
        self.attempts_made += 1
        ctx = (method_id, payload, payload_bytes, qos, timeout, retry, started, attempt)
        # resolve the offer per attempt: after a failover the service may
        # have moved to another ECU between attempts
        try:
            offer = self.endpoint.registry.find(
                self.service_id,
                client_app=self.client_app,
                client_ecu=self.endpoint.ecu_name,
            )
        except ConfigurationError:
            if retry is None:
                raise  # legacy behaviour: unoffered service raises
            self._attempt_failed(result, ctx)
            return
        breaker = self.endpoint.registry.breaker_for(self.service_id, offer.ecu)
        if breaker is not None and not breaker.allow(sim.now):
            self.breaker_fastfails += 1
            self._m_fastfails.inc()
            self._attempt_failed(result, ctx)
            return
        request = Message(
            service_id=self.service_id,
            method_id=method_id,
            msg_type=MessageType.REQUEST,
            payload_bytes=payload_bytes,
            src=self.endpoint.ecu_name,
            dst=offer.ecu,
            payload=payload,
            sender_app=self.client_app,
            session_id=sim.next_session_id(),
        )
        expire = None
        effective_timeout = timeout
        if retry is not None and retry.deadline is not None:
            # clip the attempt to the remaining total budget
            remaining = started + retry.deadline - sim.now
            if effective_timeout is None or remaining < effective_timeout:
                effective_timeout = remaining
        if effective_timeout is not None:
            expire = sim.schedule(effective_timeout, self._expire, request.session_id)
        self._pending[request.session_id] = (result, expire, breaker, ctx)
        self.endpoint.send(request, qos)

    def _attempt_failed(self, result: Signal, ctx: Tuple) -> None:
        method_id, payload, payload_bytes, qos, timeout, retry, started, attempt = ctx
        sim = self.endpoint.sim
        if retry is not None and attempt < retry.max_attempts:
            backoff = retry.backoff_for(attempt)
            if retry.deadline is None or sim.now + backoff < started + retry.deadline:
                self.retries += 1
                self._m_retries.inc()
                sim.schedule(
                    backoff, self._attempt, result, method_id, payload,
                    payload_bytes, qos, timeout, retry, started, attempt + 1,
                )
                return
        self.failures += 1
        self._m_failures.inc()
        if not result.fired:
            # fire through the event queue so a call failing synchronously
            # (open breaker, vanished service) still resolves asynchronously
            sim.schedule(0.0, self._fire_failure, result)

    def _fire_failure(self, result: Signal) -> None:
        if not result.fired:
            result.fire(None)

    def _on_response(self, response: Message) -> None:
        entry = self._pending.pop(response.session_id, None)
        if entry is None:
            return
        result, expire, breaker, _ctx = entry
        if expire is not None:
            # cancel the pending timeout so long soak runs don't accumulate
            # dead timer events in the kernel heap
            expire.cancel()
        if breaker is not None:
            breaker.record_success(self.endpoint.sim.now)
        if not result.fired:
            result.fire(response)

    def _expire(self, session_id: int) -> None:
        entry = self._pending.pop(session_id, None)
        if entry is None:
            return
        result, _expire, breaker, ctx = entry
        self.timeouts += 1
        self._m_timeouts.inc()
        if breaker is not None:
            breaker.record_failure(self.endpoint.sim.now)
        self._attempt_failed(result, ctx)


# ---------------------------------------------------------------------------
# Stream paradigm
# ---------------------------------------------------------------------------


class StreamSource:
    """Producer of a continuous, order-dependent sample stream."""

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        channel: int,
        *,
        provider_app: str,
        sample_bytes: int,
        period: float,
        qos: QoS = QOS_DEFAULT,
        instance_id: int = 1,
    ) -> None:
        if period <= 0:
            raise ConfigurationError("stream period must be positive")
        self.endpoint = endpoint
        self.service_id = service_id
        self.channel = channel
        self.provider_app = provider_app
        self.sample_bytes = sample_bytes
        self.period = period
        self.qos = qos
        self.sequence = 0
        self._running = False
        self._dst: Optional[str] = None
        endpoint.registry.offer(
            ServiceOffer(
                service_id=service_id,
                instance_id=instance_id,
                ecu=endpoint.ecu_name,
                provider_app=provider_app,
            )
        )

    def start(self, dst_ecu: str, n_samples: Optional[int] = None) -> None:
        """Begin streaming to ``dst_ecu`` (``n_samples`` bounds the run)."""
        self._dst = dst_ecu
        self._running = True
        self._remaining = n_samples
        self._emit()

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running or self._dst is None:
            return
        if self._remaining is not None:
            if self._remaining <= 0:
                self._running = False
                return
            self._remaining -= 1
        sample = Message(
            service_id=self.service_id,
            method_id=self.channel,
            msg_type=MessageType.STREAM_SAMPLE,
            payload_bytes=self.sample_bytes,
            src=self.endpoint.ecu_name,
            dst=self._dst,
            sequence=self.sequence,
            payload={"seq": self.sequence, "t": self.endpoint.sim.now},
            sender_app=self.provider_app,
            session_id=self.endpoint.sim.next_session_id(),
        )
        self.sequence += 1
        self.endpoint.send(sample, self.qos)
        self.endpoint.sim.schedule(self.period, self._emit)


class StreamSink:
    """Consumer enforcing the stream dependency: sample *k* is released to
    the application only after samples 0..k-1 have all arrived."""

    def __init__(
        self,
        endpoint: Endpoint,
        service_id: int,
        channel: int,
        *,
        client_app: str,
        on_sample: Optional[Callable[[Message], None]] = None,
    ) -> None:
        self.endpoint = endpoint
        self.service_id = service_id
        self.channel = channel
        self.client_app = client_app
        self.on_sample = on_sample
        self.next_expected = 0
        self._held: Dict[int, Message] = {}
        self.released: List[Message] = []
        self.release_times: List[float] = []
        endpoint.on_message(service_id, MessageType.STREAM_SAMPLE, self._on_sample)

    def _on_sample(self, message: Message) -> None:
        if message.sequence is None:
            raise NetworkError("stream sample without sequence number")
        self._held[message.sequence] = message
        while self.next_expected in self._held:
            sample = self._held.pop(self.next_expected)
            self.next_expected += 1
            self.released.append(sample)
            self.release_times.append(self.endpoint.sim.now)
            if self.on_sample is not None:
                self.on_sample(sample)

    @property
    def samples_pending(self) -> int:
        """Samples held back waiting for a predecessor."""
        return len(self._held)

    def playout_latencies(self) -> List[float]:
        """Per-sample latency from emission to in-order release."""
        return [
            release - sample.payload["t"]
            for sample, release in zip(self.released, self.release_times)
            if isinstance(sample.payload, dict) and "t" in sample.payload
        ]
