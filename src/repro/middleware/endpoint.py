"""Middleware endpoint: one per ECU.

The endpoint turns :class:`~repro.middleware.wire.Message` objects into
bus frames (segmenting to the smallest MTU along the route), reassembles
incoming segments, and dispatches complete messages to registered
handlers.  It also implements service discovery round trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..network import TrafficClass, VehicleNetwork
from ..sim import Signal, Simulator
from .registry import ServiceRegistry
from .wire import (
    CAN_SEGMENT_PAYLOAD,
    Message,
    MessageType,
    plan_segment_sizes,
    segment_payload_for,
)

#: Handler signature for incoming messages.
MessageHandler = Callable[[Message], None]


@dataclass(frozen=True)
class QoS:
    """Quality-of-service attributes of a transmission.

    Attributes:
        priority: technology-neutral priority (CAN-style: lower = more
            urgent, 0..2047).
        traffic_class: deterministic transmissions ride protected bus
            mechanisms (CAN low IDs, FlexRay static slots, TSN gates).
        deadline: optional end-to-end latency requirement, used by
            monitors and verification (not enforced by the network).
    """

    priority: int = 0x300
    traffic_class: TrafficClass = TrafficClass.NON_DETERMINISTIC
    deadline: Optional[float] = None


#: QoS presets mirroring the application model.
QOS_CONTROL = QoS(priority=0x040, traffic_class=TrafficClass.DETERMINISTIC)
QOS_DEFAULT = QoS()
QOS_BULK = QoS(priority=0x700, traffic_class=TrafficClass.NON_DETERMINISTIC)


class Endpoint:
    """Middleware instance bound to one ECU."""

    def __init__(
        self,
        sim: Simulator,
        network: VehicleNetwork,
        ecu_name: str,
        registry: ServiceRegistry,
    ) -> None:
        self.sim = sim
        self.network = network
        self.ecu_name = ecu_name
        self.registry = registry
        self._handlers: Dict[Tuple[int, MessageType], List[MessageHandler]] = {}
        self._default_handlers: List[MessageHandler] = []
        #: (session_id) -> [received segments, needed, message]
        self._reassembly: Dict[int, List] = {}
        #: (src, dst) -> (route_epoch, min_segment, can_route): the
        #: segmentation plan for a route, valid while the network's
        #: failure set is unchanged (``route_epoch`` guards staleness)
        self._segment_plans: Dict[Tuple[str, str], Tuple[int, int, bool]] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.frames_discarded = 0
        self.detached = False
        # cached per-paradigm delivery-latency histograms (send accept to
        # full reassembly at the destination); no-ops while metrics are off
        metrics = sim.metrics
        self._m_received = metrics.counter("mw.messages", ecu=ecu_name)
        self._m_latency = {
            MessageType.NOTIFICATION: metrics.histogram(
                "mw.delivery_latency", ecu=ecu_name, paradigm="event"
            ),
            MessageType.REQUEST: metrics.histogram(
                "mw.delivery_latency", ecu=ecu_name, paradigm="message"
            ),
            MessageType.RESPONSE: metrics.histogram(
                "mw.delivery_latency", ecu=ecu_name, paradigm="message"
            ),
            MessageType.STREAM_SAMPLE: metrics.histogram(
                "mw.delivery_latency", ecu=ecu_name, paradigm="stream"
            ),
        }
        self._m_latency_other = metrics.histogram(
            "mw.delivery_latency", ecu=ecu_name, paradigm="control"
        )
        network.register_receiver(ecu_name, self._on_frame)

    # -- handler registration ---------------------------------------------------

    def on_message(
        self, service_id: int, msg_type: MessageType, handler: MessageHandler
    ) -> None:
        """Dispatch messages of (service, type) to ``handler``.

        Multiple handlers may coexist (e.g. a consumer plus a deadline
        monitor); all of them are invoked in registration order.
        """
        self._handlers.setdefault((service_id, msg_type), []).append(handler)

    def on_any_message(self, handler: MessageHandler) -> None:
        """Fallback handler for messages without a specific registration."""
        self._default_handlers.append(handler)

    def detach(self) -> None:
        """Disconnect from the network (ECU failure / shutdown)."""
        self.detached = True
        self.network.unregister_receiver(self.ecu_name)

    def reattach(self) -> None:
        """Reconnect after recovery."""
        self.detached = False
        self.network.register_receiver(self.ecu_name, self._on_frame)

    # -- sending ---------------------------------------------------------------

    def send(self, message: Message, qos: QoS = QOS_DEFAULT) -> Signal:
        """Transmit ``message``; the signal fires (with the message) once
        the destination has reassembled all segments.

        Local delivery (dst == own ECU) bypasses the network with zero
        latency, mirroring RTE-local communication.
        """
        done = self.sim.signal(name=f"mw.{message.src}->{message.dst}")
        self.messages_sent += 1
        if message.sent_at is None:
            message.sent_at = self.sim.now
        if message.dst == self.ecu_name:
            self.sim.schedule(0.0, self._deliver_local, message, done)
            return done
        self._transmit(self.ecu_name, message, qos, done)
        return done

    def _segment_plan(self, src: str, dst: str) -> Tuple[int, bool]:
        """(min_segment, can_route) for the live route, cached per
        ``(src, dst)`` and invalidated by the network's ``route_epoch``
        (any ``fail_bus``/``repair_bus`` cycle)."""
        epoch = self.network.route_epoch
        plan = self._segment_plans.get((src, dst))
        if plan is not None and plan[0] == epoch:
            return plan[1], plan[2]
        route_buses = self.network.route_buses(src, dst)
        min_segment = min(
            segment_payload_for(spec.technology) for spec in route_buses
        )
        can_route = min_segment == CAN_SEGMENT_PAYLOAD
        self._segment_plans[(src, dst)] = (epoch, min_segment, can_route)
        return min_segment, can_route

    def _segment_sizes(self, src: str, message: Message) -> List[int]:
        """Frame payload sizes (bytes on each frame) for the live route."""
        min_segment, can_route = self._segment_plan(src, message.dst)
        return plan_segment_sizes(message.total_bytes, min_segment, can_route)

    def _transmit(self, src: str, message: Message, qos: QoS, done: Signal) -> None:
        sizes = self._segment_sizes(src, message)
        n_segments = len(sizes)
        markers = [(message, index, n_segments, done) for index in range(n_segments)]
        self.network.send_segments(
            src,
            message.dst,
            sizes,
            priority=qos.priority,
            traffic_class=qos.traffic_class,
            payloads=markers,
            label=f"svc{message.service_id:04x}.{message.msg_type.value}",
        )

    def _deliver_local(self, message: Message, done: Signal) -> None:
        self.messages_received += 1
        self._dispatch(message)
        done.fire(message)

    # -- receiving --------------------------------------------------------------

    def _on_frame(self, frame) -> None:
        if self.detached:
            return
        if frame.corrupted:
            # CRC check failed: the segment is discarded, so the carrying
            # message never completes reassembly (a lost transmission)
            self.frames_discarded += 1
            return
        marker = frame.payload
        if not isinstance(marker, tuple) or len(marker) != 4:
            return  # not a middleware frame
        message, index, n_segments, done = marker
        if message.dst != self.ecu_name:
            return
        state = self._reassembly.get(message.session_id)
        if state is None:
            state = [0, n_segments, message, done]
            self._reassembly[message.session_id] = state
        state[0] += 1
        if state[0] >= state[1]:
            del self._reassembly[message.session_id]
            self.messages_received += 1
            self._dispatch(message)
            if not done.fired:
                done.fire(message)

    def _dispatch(self, message: Message) -> None:
        self._m_received.inc()
        if message.sent_at is not None:
            self._m_latency.get(message.msg_type, self._m_latency_other).observe(
                self.sim.now - message.sent_at
            )
        self.sim.trace(
            "mw.delivery",
            ecu=self.ecu_name,
            service=message.service_id,
            type=message.msg_type.value,
            session=message.session_id,
            size=message.payload_bytes,
        )
        handlers = self._handlers.get((message.service_id, message.msg_type))
        if handlers:
            for handler in list(handlers):
                handler(message)
            return
        for fallback in self._default_handlers:
            fallback(message)

    # -- discovery ---------------------------------------------------------------

    def discover(
        self, service_id: int, *, client_app: str = ""
    ) -> Signal:
        """Resolve a service over the network (FIND/OFFER round trip).

        The returned signal fires with the :class:`ServiceOffer`.  The
        directory lookup is authoritative; the round trip to the provider
        models SOME/IP-SD latency.  Raises synchronously on unknown
        services or denied bindings.
        """
        offer = self.registry.find(
            service_id, client_app=client_app, client_ecu=self.ecu_name
        )
        result = self.sim.signal(name=f"sd.{service_id:04x}")
        if offer.ecu == self.ecu_name:
            self.sim.schedule(0.0, result.fire, offer)
            return result
        find_msg = Message(
            service_id=service_id,
            method_id=0,
            msg_type=MessageType.FIND_SERVICE,
            payload_bytes=16,
            src=self.ecu_name,
            dst=offer.ecu,
            session_id=self.sim.next_session_id(),
        )

        def on_find_done(_msg) -> None:
            offer_msg = Message(
                service_id=service_id,
                method_id=0,
                msg_type=MessageType.OFFER_SERVICE,
                payload_bytes=32,
                src=offer.ecu,
                dst=self.ecu_name,
                session_id=self.sim.next_session_id(),
            )
            back = self.sim.signal()
            back.add_callback(lambda _m: result.fire(offer))
            self._send_from(offer.ecu, offer_msg, QOS_DEFAULT, back)

        self.send(find_msg, QOS_DEFAULT).add_callback(on_find_done)
        return result

    def _send_from(
        self, src_ecu: str, message: Message, qos: QoS, done: Signal
    ) -> None:
        """Send a message on behalf of another ECU (SD reply modelling)."""
        if message.sent_at is None:
            message.sent_at = self.sim.now
        self._transmit(src_ecu, message, qos, done)
