"""Service-oriented middleware: SOME/IP-style messaging, discovery and the
event / message / stream communication paradigms of the paper's Figure 3."""

from .durability import (
    DeadlineMonitor,
    DeadlineViolation,
    DurableEventProducer,
)
from .endpoint import (
    Endpoint,
    MessageHandler,
    QOS_BULK,
    QOS_CONTROL,
    QOS_DEFAULT,
    QoS,
)
from .paradigms import (
    EventConsumer,
    EventProducer,
    RetryPolicy,
    RpcClient,
    RpcServer,
    StreamSink,
    StreamSource,
)
from .registry import (
    BindingGuard,
    CircuitBreaker,
    ServiceOffer,
    ServiceRegistry,
    Subscription,
)
from .wire import (
    CAN_SEGMENT_PAYLOAD,
    ETH_SEGMENT_PAYLOAD,
    FLEXRAY_SEGMENT_PAYLOAD,
    HEADER_BYTES,
    Message,
    MessageType,
    ReturnCode,
    SEGMENT_PAYLOADS,
    plan_segment_sizes,
    segment_payload_for,
    segments_needed,
)

__all__ = [
    "BindingGuard",
    "CAN_SEGMENT_PAYLOAD",
    "CircuitBreaker",
    "DeadlineMonitor",
    "DeadlineViolation",
    "DurableEventProducer",
    "ETH_SEGMENT_PAYLOAD",
    "Endpoint",
    "EventConsumer",
    "EventProducer",
    "FLEXRAY_SEGMENT_PAYLOAD",
    "HEADER_BYTES",
    "Message",
    "MessageHandler",
    "MessageType",
    "QOS_BULK",
    "QOS_CONTROL",
    "QOS_DEFAULT",
    "QoS",
    "RetryPolicy",
    "ReturnCode",
    "RpcClient",
    "RpcServer",
    "SEGMENT_PAYLOADS",
    "ServiceOffer",
    "ServiceRegistry",
    "StreamSink",
    "StreamSource",
    "Subscription",
    "plan_segment_sizes",
    "segment_payload_for",
    "segments_needed",
]
