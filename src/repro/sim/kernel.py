"""The discrete-event simulation kernel.

The kernel offers two programming styles that interoperate freely:

* **callback style** — :meth:`Simulator.schedule` runs a plain function at a
  later simulated time;
* **process style** — :meth:`Simulator.process` drives a generator that
  ``yield``\\ s :class:`Timeout`, :class:`Signal` or :class:`Process` objects,
  in the spirit of SimPy, which keeps stateful protocol logic readable.

Time is a ``float`` in **seconds**.  Determinism is guaranteed: events at the
same instant fire in (priority, insertion-order) order, and all randomness
must flow through :class:`repro.sim.rng.RngStreams`.

The kernel also owns the **world registry** used by copy-on-write
snapshots (:mod:`repro.sim.snapshot`): components register themselves via
:meth:`Simulator.adopt` so a forked world can look them up, and declare
immutable structure via :meth:`Simulator.share` so forks alias it instead
of deep-copying it.
"""

from __future__ import annotations

import itertools
import weakref
from heapq import heappop
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional, Union

from ..errors import SimulationError
from ..obs.metrics import MetricsRegistry
from ..obs.profiler import KernelProfiler
from .events import PRIORITY_NORMAL, PRIORITY_URGENT, EventQueue, ScheduledCall
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .snapshot import SimSnapshot


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Interrupted(Exception):
    """Raised inside a process that another party interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


def _drain_callbacks(callbacks: List[Callable[[Any], None]], value: Any) -> None:
    """Run a batch of signal waiters back-to-back inside one event.

    Firing a signal with N waiters used to push N urgent events; since the
    waiters were pushed consecutively they always ran consecutively anyway,
    so collapsing them into one drain event preserves ordering exactly
    while cutting N heap operations down to one.
    """
    for cb in callbacks:
        cb(value)


class Signal:
    """A one-shot waitable event carrying an optional value.

    Processes wait on a signal by yielding it; callback code waits by
    registering through :meth:`add_callback`.  Firing an already-fired signal
    raises :class:`SimulationError` — use a fresh signal per occurrence.
    """

    __slots__ = ("sim", "fired", "value", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self.name = name
        self._callbacks: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters at the current instant."""
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        callbacks = self._callbacks
        if not callbacks:
            return
        self._callbacks = []
        sim = self.sim
        # fire-and-forget: nobody holds the wakeup's handle, so it comes
        # from (and returns to) the queue's free list
        if len(callbacks) == 1:
            sim.queue.push_pooled(sim.now, callbacks[0], (value,), PRIORITY_URGENT)
        else:
            sim.queue.push_pooled(
                sim.now, _drain_callbacks, (callbacks, value), PRIORITY_URGENT
            )

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the signal fires.

        If the signal already fired, the callback runs at the current
        instant (still asynchronously, preserving event ordering).
        """
        if self.fired:
            self.sim.post(0.0, callback, self.value, priority=PRIORITY_URGENT)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "fired" if self.fired else "pending"
        return f"<Signal {self.name!r} {state}>"


#: The kinds of object a process generator may yield.
Yieldable = Union[Timeout, Signal, "Process", float, int]


class Process:
    """A running process driven by the kernel.

    Created via :meth:`Simulator.process`.  A process finishes when its
    generator returns; the return value becomes :attr:`result` and the
    :attr:`done` signal fires with it.  If the generator raises, the
    exception is stored in :attr:`error` and re-raised by the simulator on
    the next :meth:`Simulator.run` unless :attr:`defused` (by some party
    waiting on :attr:`done` at the instant of the crash).

    Snapshot note: a *live* generator cannot be deep-copied or pickled, so
    worlds with alive processes refuse to fork (see
    :func:`repro.sim.snapshot.check_forkable`).  Finished processes drop
    their exhausted generator on capture and snapshot cleanly.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(sim, name=f"{self.name}.done")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.alive = True
        #: set on crash when somebody supervised us through :attr:`done`;
        #: a defused crash does not abort the simulation.
        self.defused = False
        # cached at construction: a profiler is attached when the simulator
        # is built, and processes are always created afterwards
        self._profiler = sim.profiler
        self._pending_wait: Optional[ScheduledCall] = None
        self._waiting_on_signal = False

    # -- snapshot support --------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if not self.alive:
            # exhausted generators refuse deepcopy/pickle just like live
            # ones; a finished process no longer needs its frame anyway
            state["gen"] = None
        return state

    # -- kernel internals ------------------------------------------------

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None):
        """Advance the generator by one yield."""
        if not self.alive:
            return
        wait = self._pending_wait
        if wait is not None:
            self._pending_wait = None
            if wait._queue is None and not wait.cancelled:
                # the wait that woke us was just popped for dispatch and
                # this was its only surviving handle — let the kernel
                # recycle it after the callback returns
                wait.pooled = True
        self._waiting_on_signal = False
        profiler = self._profiler
        try:
            if profiler is None:
                if throw is not None:
                    target = self.gen.throw(throw)
                else:
                    target = self.gen.send(send_value)
            else:
                start = perf_counter()
                try:
                    if throw is not None:
                        target = self.gen.throw(throw)
                    else:
                        target = self.gen.send(send_value)
                finally:
                    profiler.account_generator(self.name, perf_counter() - start)
        except StopIteration as stop:
            self.alive = False
            self.result = getattr(stop, "value", None)
            self.done.fire(self.result)
            return
        except Interrupted:
            # Process chose not to handle its interruption: treat as a
            # clean, intentional termination.
            self.alive = False
            self.done.fire(None)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self.alive = False
            self.error = exc
            # A party already waiting on `done` is a supervisor: it receives
            # the exception and the crash is defused (see the class docstring).
            self.defused = bool(self.done._callbacks)
            self.sim._crashed_processes.append(self)
            self.done.fire(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Yieldable) -> None:
        if isinstance(target, (int, float)):
            target = Timeout(float(target))
        if isinstance(target, Timeout):
            self._pending_wait = self.sim.schedule(target.delay, self._step)
        elif isinstance(target, Signal):
            self._waiting_on_signal = True
            target.add_callback(self._on_signal)
        elif isinstance(target, Process):
            self._waiting_on_signal = True
            target.done.add_callback(self._on_signal)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {target!r}"
            )

    def _on_signal(self, value: Any) -> None:
        if not self._waiting_on_signal:
            return  # interrupted while waiting; stale wakeup
        if isinstance(value, BaseException):
            self._step(throw=value)
        else:
            self._step(send_value=value)

    # -- public API ------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current instant."""
        if not self.alive:
            return
        wait = self._pending_wait
        if wait is not None:
            self._pending_wait = None
            # releasing the only handle: let the queue recycle it when the
            # cancelled entry surfaces (or is pruned)
            wait.pooled = True
            wait.cancel()
        self._waiting_on_signal = False
        self.sim.post(
            0.0, self._step, None, Interrupted(cause), priority=PRIORITY_URGENT
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The simulation world: clock, event queue and process registry.

    Observability is opt-in: pass a :class:`~repro.obs.metrics.MetricsRegistry`
    to collect layer metrics (a disabled private registry is created
    otherwise, so cached instrument handles stay valid no-ops) and a
    :class:`~repro.obs.profiler.KernelProfiler` to attribute wall-clock
    time per event callback.  A
    :class:`~repro.analysis.sanitizer.KernelSanitizer` attaches itself
    through :attr:`sanitizer` to detect ordering races.  With none of
    them attached the kernel hot path pays one branch test per optional
    layer per event and allocates nothing.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[KernelProfiler] = None,
    ) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.profiler = profiler
        #: opt-in :class:`repro.analysis.sanitizer.KernelSanitizer`;
        #: ``None`` keeps the hot path at a single branch per event
        self.sanitizer = None
        self._m_events = self.metrics.counter("sim.events")
        self._m_crashes = self.metrics.counter("sim.crashes")
        self._crashed_processes: List[Process] = []
        self._running = False
        #: components registered for post-fork lookup (see :meth:`adopt`)
        self.world: Dict[str, Any] = {}
        #: immutable structure shared by reference across forks
        self._shared: List[Any] = []
        #: weak refs to every process ever started — the snapshot layer
        #: scans these to refuse forking a world with live generators
        self._procs: List[weakref.ref] = []
        #: sim-local middleware session ids (a process-global counter here
        #: would make forked worlds diverge from their parent's traces)
        self._session_ids = itertools.count(1)
        #: sim-local network frame ids, for the same reason
        self._frame_ids = itertools.count(1)
        #: sim-local OS job ids, for the same reason (job ids appear in
        #: the trace via ``os.release`` / ``os.complete``)
        self._job_ids = itertools.count(1)

    # -- snapshot / world registry ----------------------------------------

    def adopt(self, name: str, obj: Any) -> str:
        """Register ``obj`` under ``name`` in the world registry.

        Adopted objects are reachable from the simulator, so
        :meth:`fork` copies them along with the kernel state and the
        forked world can retrieve its own copy via ``fork.world[name]``.
        Duplicate names get a ``#2``, ``#3``… suffix; the key actually
        used is returned.
        """
        key = name
        n = 2
        while key in self.world:
            key = f"{name}#{n}"
            n += 1
        self.world[key] = obj
        return key

    def share(self, *objs: Any) -> None:
        """Declare objects as immutable structure shared across forks.

        Shared objects are aliased (not copied) by :meth:`fork` and
        :meth:`snapshot` — the copy-on-write boundary.  Only register
        objects that are never mutated after construction (topologies,
        specs, routing graphs); sharing mutable state would leak writes
        between worlds.
        """
        shared = self._shared
        for obj in objs:
            shared.append(obj)

    def next_session_id(self) -> int:
        """Allocate a sim-local middleware session id."""
        return next(self._session_ids)

    def next_frame_id(self) -> int:
        """Allocate a sim-local network frame id."""
        return next(self._frame_ids)

    def next_job_id(self) -> int:
        """Allocate a sim-local OS job id."""
        return next(self._job_ids)

    def snapshot(self) -> "SimSnapshot":
        """Capture a reusable frozen copy of the whole world.

        See :class:`repro.sim.snapshot.SimSnapshot`; restore with
        ``snap.restore()`` (or :meth:`restore`) as many times as needed.
        """
        from .snapshot import SimSnapshot

        return SimSnapshot.capture(self)

    def fork(self) -> "Simulator":
        """Return an independent deep copy of this world.

        Shared structure (:meth:`share`) is aliased; everything else —
        clock, event heap, RNG streams, registered components — is
        copied.  Continuing the fork and continuing the original produce
        byte-identical traces that then evolve independently.
        """
        from .snapshot import fork_world

        return fork_world(self)

    def restore(self, snap: "SimSnapshot") -> "Simulator":
        """Materialize a fresh world from ``snap`` (alias of ``snap.restore()``)."""
        return snap.restore()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # weakrefs neither pickle nor serve any purpose in a copy: the
        # copied world has no live generators by construction (capture
        # refuses them), so its guard list can start empty
        state["_procs"] = []
        return state

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            return self.queue.push(self.now + delay, callback, args, priority)
        # delay == 0 fast path — the dominant case (urgent wakeups, signal
        # fan-out, process starts): skip the sign test and the addition.
        return self.queue.push(self.now, callback, args, priority)

    def post(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, free-list backed.

        Use when the caller will never cancel the event — the scheduled
        call object is recycled right after dispatch, so steady-state
        posting allocates nothing.
        """
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            self.queue.push_pooled(self.now + delay, callback, args, priority)
        else:
            self.queue.push_pooled(self.now, callback, args, priority)

    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self.queue.push(time, callback, args, priority)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot :class:`Signal`."""
        return Signal(self, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process and start it at this instant."""
        proc = Process(self, gen, name=name)
        # Track the start event like any other pending wait so that an
        # interrupt before the first step cancels it (otherwise the
        # generator would be stepped twice and `done` would double-fire).
        proc._pending_wait = self.schedule(0.0, proc._step)
        procs = self._procs
        procs.append(weakref.ref(proc))
        if len(procs) > 128:
            self._procs = [ref for ref in procs if ref() is not None]
        return proc

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Execute the single next event."""
        call = self.queue.pop()
        t = call.time
        if t < self.now:
            raise SimulationError("event queue time went backwards")
        self.now = t
        san = self.sanitizer
        if san is not None:
            # inline tie screen: only same (time, priority) heads can be
            # order-sensitive, so the sanitizer is called solely for
            # candidate ties and the per-event cost stays at a few loads
            san._current_event = call
            heap = san._heap
            if heap:
                head = heap[0]
                if head[0] == t and head[1] == call.priority:
                    san.on_tie(call, head[3])
        m = self._m_events
        if m._enabled:
            m.inc()
        profiler = self.profiler
        if profiler is None:
            call.callback(*call.args)
        else:
            start = perf_counter()
            try:
                call.callback(*call.args)
            finally:
                profiler.account(call.callback, perf_counter() - start)
        if call.pooled:
            self.queue.recycle(call)
        self._raise_crashes()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is always advanced to exactly
        ``until`` at the end, even if the queue drained earlier.

        The loop dispatches straight off the heap in batches: cancelled
        heads are skipped inline and pooled calls are recycled right
        after their callback returns, so the steady-state path performs
        one heap pop, one dispatch and zero allocations per event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        queue = self.queue
        heap = queue._heap  # queue mutates this list strictly in place
        m = self._m_events
        try:
            while True:
                while heap and heap[0][3].cancelled:
                    queue._discard(heappop(heap)[3])
                if not heap:
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    break
                call = heappop(heap)[3]
                call._queue = None
                if t < self.now:
                    raise SimulationError("event queue time went backwards")
                self.now = t
                san = self.sanitizer
                if san is not None:
                    san._current_event = call
                    if heap:
                        head = heap[0]
                        if head[0] == t and head[1] == call.priority:
                            san.on_tie(call, head[3])
                if m._enabled:
                    m.inc()
                profiler = self.profiler
                if profiler is None:
                    call.callback(*call.args)
                else:
                    start = perf_counter()
                    try:
                        call.callback(*call.args)
                    finally:
                        profiler.account(call.callback, perf_counter() - start)
                if call.pooled:
                    queue.recycle(call)
                if self._crashed_processes:
                    self._raise_crashes()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        self._raise_crashes()

    def _raise_crashes(self) -> None:
        if not self._crashed_processes:
            return
        # Drain everything: a crash must never resurface on an unrelated
        # later run() call, and defused crashes must not abort anything.
        crashed, self._crashed_processes = self._crashed_processes, []
        self._m_crashes.inc(len(crashed))
        fatal = [p for p in crashed if not p.defused]
        if not fatal:
            return
        first = fatal[0]
        if len(fatal) == 1:
            message = f"process {first.name!r} crashed: {first.error!r}"
        else:
            names = ", ".join(repr(p.name) for p in fatal)
            message = (
                f"{len(fatal)} processes crashed ({names}); "
                f"first error: {first.error!r}"
            )
        raise SimulationError(message) from first.error

    # -- convenience -----------------------------------------------------

    def trace(self, category: str, **fields: Any) -> None:
        """Record a trace entry stamped with the current simulated time."""
        self.tracer.record(self.now, category, fields)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Simulator t={self.now:.6f} pending={len(self.queue)}>"
