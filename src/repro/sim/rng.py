"""Deterministic random-number streams.

Simulations must be reproducible: all randomness is drawn from named
sub-streams derived from one master seed, so adding a new consumer of
randomness never perturbs the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for stream ``name`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A registry of independent, deterministically seeded RNG streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}
        #: opt-in :class:`repro.analysis.sanitizer.KernelSanitizer` hook
        #: guarding against one stream being shared by two consumers;
        #: ``None`` keeps :meth:`stream` at a single extra branch
        self._sanitizer = None

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        if self._sanitizer is not None:
            self._sanitizer.note_stream(name)
        return rng

    # -- convenience draws -------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq: Sequence[T]) -> T:
        return self.stream(name).choice(seq)

    def shuffle(self, name: str, items: List[T]) -> List[T]:
        """Return a new list with ``items`` shuffled (input not mutated)."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def normal_clamped(
        self, name: str, mean: float, stddev: float, low: float, high: float
    ) -> float:
        """Draw a gaussian clamped into ``[low, high]``."""
        value = self.stream(name).gauss(mean, stddev)
        return min(max(value, low), high)
