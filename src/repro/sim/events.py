"""Event primitives for the discrete-event simulation kernel.

The kernel is organised around a single priority queue of
:class:`ScheduledCall` objects.  Each call fires at a simulated time; ties
are broken first by an integer priority (lower fires first) and then by
insertion order, which makes every simulation run fully deterministic.

Hot-path notes: the heap stores ``[time, priority, seq, call]`` *lists*,
so every sift comparison runs in C and — because ``seq`` is unique —
never falls through to comparing the call objects themselves.  Lists
(not tuples) let a recycled call keep its heap entry across lives: the
free-list pool (:meth:`EventQueue.push_pooled`) hands out previously
dispatched fire-and-forget calls together with their entry, so the
steady-state loop allocates nothing per event beyond the unavoidable
time float and sequence int.  Cancelled entries are pruned eagerly once
they outnumber the live ones, so long campaigns that cancel many timers
keep O(log live) heap operations.

Pooled calls never escape a snapshot: the pool itself is dropped on
deep-copy/pickle (see ``__getstate__``), so a restored world starts with
an empty free list and never resurrects recycled garbage.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError

#: Default priority for scheduled calls.  Most events use this value.
PRIORITY_NORMAL = 100

#: Priority for events that must run before normal events at the same time
#: (e.g. releasing a resource before the next requester polls it).
PRIORITY_URGENT = 10

#: Priority for bookkeeping that must run after all normal events at the
#: same instant (e.g. end-of-slot accounting).
PRIORITY_LATE = 1000


class ScheduledCall:
    """A callback scheduled to run at a fixed simulated time.

    Instances are created through :meth:`repro.sim.kernel.Simulator.schedule`
    and may be cancelled before they fire via :meth:`cancel`.  Calls with
    :attr:`pooled` set are fire-and-forget: no caller holds their handle,
    so the kernel returns them to the queue's free list right after
    dispatch (or when a cancelled one surfaces) and the next pooled push
    reuses the object and its heap entry.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args",
                 "cancelled", "pooled", "_queue", "_entry")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.pooled = False
        self._queue = queue
        #: the [time, priority, seq, call] heap entry, kept across pool
        #: lives so reuse allocates no fresh list
        self._entry: Optional[list] = None

    @property
    def sort_key(self) -> tuple:
        """Ordering key ``(time, priority, seq)`` (allocated on demand)."""
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Prevent this call from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    def __lt__(self, other: "ScheduledCall") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.6f} p={self.priority} {state}>"


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledCall` objects."""

    def __init__(self) -> None:
        # [time, priority, seq, call] lists: the unique seq guarantees the
        # ScheduledCall itself is never reached during comparison, and a
        # mutable entry can be recycled together with its pooled call
        self._heap: List[list] = []
        self._counter = itertools.count()
        #: cancelled calls still sitting in the heap awaiting lazy removal
        self._cancelled_in_heap = 0
        #: free list of dispatched fire-and-forget calls awaiting reuse
        self._pool: List[ScheduledCall] = []
        #: number of in-place compaction rebuilds performed (stats)
        self.compactions = 0
        #: pooled pushes served from the free list / total object builds
        self.pool_reuses = 0
        self.pool_creations = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending calls."""
        return len(self._heap) - self._cancelled_in_heap

    def live_len(self) -> int:
        """Explicit alias of ``len()``: live (non-cancelled) pending calls."""
        return len(self._heap) - self._cancelled_in_heap

    def stats(self) -> Dict[str, int]:
        """Queue health counters (heap size, dead weight, pool traffic)."""
        return {
            "heap_len": len(self._heap),
            "live_len": self.live_len(),
            "cancelled_in_heap": self._cancelled_in_heap,
            "compactions": self.compactions,
            "pool_size": len(self._pool),
            "pool_reuses": self.pool_reuses,
            "pool_creations": self.pool_creations,
        }

    # -- snapshot support --------------------------------------------------

    def __getstate__(self) -> dict:
        # Pool-aware capture: recycled calls belong to *this* world's free
        # list only.  A deep copy or pickle gets an empty pool, so restored
        # worlds can never resurrect pooled garbage that the source world
        # is still reusing.
        state = self.__dict__.copy()
        state["_pool"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- cancellation & compaction ----------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        # Eager pruning: once cancelled entries exceed half the heap, one
        # O(n) rebuild is cheaper than letting every push/pop sift through
        # the dead weight.  Amortised cost stays O(1) per cancellation.
        if self._cancelled_in_heap * 2 > len(self._heap) and len(self._heap) >= 8:
            self._prune()

    def _discard(self, call: ScheduledCall) -> None:
        """Account for one cancelled call leaving the heap."""
        call._queue = None
        self._cancelled_in_heap -= 1
        if call.pooled:
            self.recycle(call)

    def _prune(self) -> None:
        """Rebuild the heap without cancelled entries.

        This is the single compaction code path (also used by
        :meth:`clear`): strictly in place, because observers — the kernel
        sanitizer caches the heap *list object* at attach time — must keep
        seeing the live heap after a rebuild.
        """
        live = []
        for entry in self._heap:
            call = entry[3]
            if call.cancelled:
                call._queue = None
                self._cancelled_in_heap -= 1
                if call.pooled:
                    self.recycle(call)
            else:
                live.append(entry)
        heapq.heapify(live)
        self._compact(live)

    def _compact(self, live: List[list]) -> None:
        """Replace the heap contents in place with ``live`` entries."""
        self._heap[:] = live
        self._cancelled_in_heap = 0
        self.compactions += 1

    # -- push / pop --------------------------------------------------------

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> ScheduledCall:
        """Insert a call at ``time`` and return a cancellable handle."""
        seq = next(self._counter)
        call = ScheduledCall(time, priority, seq, callback, args, self)
        entry = [time, priority, seq, call]
        call._entry = entry
        heapq.heappush(self._heap, entry)
        return call

    def push_pooled(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Insert a fire-and-forget call, reusing a recycled object.

        No handle is returned — pooled calls cannot be cancelled by
        callers, which is exactly what makes recycling them after
        dispatch safe.
        """
        seq = next(self._counter)
        pool = self._pool
        if pool:
            call = pool.pop()
            self.pool_reuses += 1
            call.time = time
            call.priority = priority
            call.seq = seq
            call.callback = callback
            call.args = args
            call.pooled = True
            call._queue = self
            entry = call._entry
            entry[0] = time
            entry[1] = priority
            entry[2] = seq
            entry[3] = call
        else:
            call = ScheduledCall(time, priority, seq, callback, args, self)
            call.pooled = True
            entry = [time, priority, seq, call]
            call._entry = entry
            self.pool_creations += 1
        heapq.heappush(self._heap, entry)

    def recycle(self, call: ScheduledCall) -> None:
        """Return a dispatched (or dropped-cancelled) pooled call to the
        free list.  Callers must guarantee no live reference to the handle
        survives — the kernel only recycles calls whose handles never
        escaped, or whose holder explicitly released them by setting
        :attr:`ScheduledCall.pooled`."""
        call.callback = None
        call.args = ()
        call.cancelled = False
        call.pooled = False
        call._queue = None
        call._entry[3] = None  # break the call<->entry cycle while pooled
        self._pool.append(call)

    def pop(self) -> ScheduledCall:
        """Remove and return the earliest non-cancelled call.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            call = heapq.heappop(heap)[3]
            if not call.cancelled:
                # detach so a late cancel() cannot skew the live count
                call._queue = None
                return call
            self._discard(call)
        raise SimulationError("event queue is empty")

    def _skip_cancelled_heads(self) -> None:
        """Drop cancelled entries sitting at the heap root."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            self._discard(heapq.heappop(heap)[3])

    def peek_call(self) -> Optional["ScheduledCall"]:
        """Return the next live call without removing it, or ``None``.

        Cancelled heads are pruned on the way, exactly like
        :meth:`peek_time`, so the returned handle is always live.
        """
        self._skip_cancelled_heads()
        heap = self._heap
        return heap[0][3] if heap else None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None``."""
        self._skip_cancelled_heads()
        heap = self._heap
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event (same in-place path as compaction)."""
        for entry in self._heap:
            call = entry[3]
            call._queue = None
            if call.pooled:
                self.recycle(call)
        self._compact([])
