"""Event primitives for the discrete-event simulation kernel.

The kernel is organised around a single priority queue of
:class:`ScheduledCall` objects.  Each call fires at a simulated time; ties
are broken first by an integer priority (lower fires first) and then by
insertion order, which makes every simulation run fully deterministic.

Hot-path notes: the heap stores plain ``(time, priority, seq, call)``
tuples, so every sift comparison runs in C and — because ``seq`` is
unique — never falls through to comparing the call objects themselves;
``ScheduledCall`` keeps a precomputed ``sort_key`` for callers that order
handles directly; and cancelled entries are pruned eagerly once they
outnumber the live ones, so long campaigns that cancel many timers keep
O(log live) heap operations.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from ..errors import SimulationError

#: Default priority for scheduled calls.  Most events use this value.
PRIORITY_NORMAL = 100

#: Priority for events that must run before normal events at the same time
#: (e.g. releasing a resource before the next requester polls it).
PRIORITY_URGENT = 10

#: Priority for bookkeeping that must run after all normal events at the
#: same instant (e.g. end-of-slot accounting).
PRIORITY_LATE = 1000


class ScheduledCall:
    """A callback scheduled to run at a fixed simulated time.

    Instances are created through :meth:`repro.sim.kernel.Simulator.schedule`
    and may be cancelled before they fire via :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "sort_key", "callback", "args",
                 "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        #: ordering key, precomputed so heap comparisons allocate nothing
        self.sort_key = (time, priority, seq)
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent this call from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    def __lt__(self, other: "ScheduledCall") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.6f} p={self.priority} {state}>"


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledCall` objects."""

    def __init__(self) -> None:
        # (time, priority, seq, call): the unique seq guarantees the
        # ScheduledCall itself is never reached during tuple comparison
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        #: cancelled calls still sitting in the heap awaiting lazy removal
        self._cancelled_in_heap = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending calls."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        # Eager pruning: once cancelled entries exceed half the heap, one
        # O(n) rebuild is cheaper than letting every push/pop sift through
        # the dead weight.  Amortised cost stays O(1) per cancellation.
        if self._cancelled_in_heap * 2 > len(self._heap) and len(self._heap) >= 8:
            self._prune()

    def _prune(self) -> None:
        """Rebuild the heap without cancelled entries.

        In place: observers (the kernel sanitizer) cache the heap list
        object, so pruning must never rebind ``_heap``.
        """
        live = []
        for entry in self._heap:
            call = entry[3]
            if call.cancelled:
                call._queue = None
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled_in_heap = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> ScheduledCall:
        """Insert a call at ``time`` and return a cancellable handle."""
        seq = next(self._counter)
        call = ScheduledCall(time, priority, seq, callback, args, self)
        heapq.heappush(self._heap, (time, priority, seq, call))
        return call

    def pop(self) -> ScheduledCall:
        """Remove and return the earliest non-cancelled call.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap:
            call = heapq.heappop(self._heap)[3]
            # detach so a late cancel() cannot skew the live count
            call._queue = None
            if not call.cancelled:
                return call
            self._cancelled_in_heap -= 1
        raise SimulationError("event queue is empty")

    def peek_call(self) -> Optional["ScheduledCall"]:
        """Return the next live call without removing it, or ``None``.

        Cancelled heads are pruned on the way, exactly like
        :meth:`peek_time`, so the returned handle is always live.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3]._queue = None
            self._cancelled_in_heap -= 1
        return heap[0][3] if heap else None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3]._queue = None
            self._cancelled_in_heap -= 1
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._cancelled_in_heap = 0
