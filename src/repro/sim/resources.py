"""Shared-resource primitives built on the kernel.

These model contention points other than the CPU schedulers (which have
their own dedicated models in :mod:`repro.osal`): crypto modules, persistent
memory, middleware queues, etc.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from ..errors import SimulationError
from .kernel import Signal, Simulator


class Resource:
    """A counted resource with FIFO (optionally priority-ordered) waiters.

    Usage from a process::

        grant = resource.request(priority=0)
        yield grant            # resumes once the resource is held
        ...
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._seq = 0
        # waiters sorted by (priority, arrival sequence)
        self._waiters: List[Tuple[int, int, Signal]] = []

    def request(self, priority: int = 0) -> Signal:
        """Ask for one unit; the returned signal fires when granted."""
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_mutation(self, "request", self.name)
        grant = self.sim.signal(name=f"{self.name}.grant")
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            grant.fire()
        else:
            self._seq += 1
            self._waiters.append((priority, self._seq, grant))
            self._waiters.sort(key=lambda w: (w[0], w[1]))
        return grant

    def release(self) -> None:
        """Return one unit, granting it to the best waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_mutation(self, "release", self.name)
        if self._waiters:
            __, __, grant = self._waiters.pop(0)
            grant.fire()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return len(self._waiters)


class Store:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns a signal that fires with the next
    item (immediately if one is queued).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_mutation(self, "put", self.name)
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        """Return a signal that fires with the next available item."""
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_mutation(self, "get", self.name)
        sig = self.sim.signal(name=f"{self.name}.get")
        if self._items:
            sig.fire(self._items.popleft())
        else:
            self._getters.append(sig)
        return sig

    def __len__(self) -> int:
        return len(self._items)

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (oldest first) without consuming them."""
        return list(self._items)


class ThroughputServer:
    """Serialises work through a device with finite throughput.

    Models hardware such as a crypto accelerator or flash controller: jobs
    of a given *size* are processed one at a time at ``rate`` size-units per
    second.  The signal returned by :meth:`submit` fires when the job
    completes.
    """

    def __init__(
        self, sim: Simulator, rate: float, name: str = "", overhead: float = 0.0
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"throughput rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self.overhead = overhead
        self.name = name
        self._busy_until = 0.0
        self.jobs_done = 0

    def submit(self, size: float, priority: int = 0) -> Signal:
        """Queue a job of ``size`` units; returns its completion signal.

        Jobs are served in submission order (the ``priority`` argument is
        accepted for interface parity with :class:`Resource` but ties are
        rare enough at device level that strict FIFO keeps the model simple
        and deterministic).
        """
        del priority
        if size < 0:
            raise SimulationError(f"job size must be >= 0, got {size}")
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note_mutation(self, "submit", self.name)
        start = max(self.sim.now, self._busy_until)
        duration = self.overhead + size / self.rate
        self._busy_until = start + duration
        done = self.sim.signal(name=f"{self.name}.job")
        self.sim.at(self._busy_until, self._complete, done)
        return done

    def _complete(self, done: Signal) -> None:
        self.jobs_done += 1
        done.fire()

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work still in front of a new job."""
        return max(0.0, self._busy_until - self.sim.now)
