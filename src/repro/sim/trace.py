"""Trace recording for simulations.

Every subsystem records structured trace entries through
:meth:`repro.sim.kernel.Simulator.trace`.  Traces power the runtime monitor,
the XiL harness assertions and the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """A single timestamped observation."""

    time: float
    category: str
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


@dataclass
class Tracer:
    """Collects :class:`TraceEntry` records, optionally filtered by category.

    Attributes:
        enabled: master switch; a disabled tracer costs almost nothing.
        categories: if non-empty, only these categories are recorded.
    """

    enabled: bool = True
    categories: Optional[set] = None
    entries: List[TraceEntry] = field(default_factory=list)
    _listeners: List[Callable[[TraceEntry], None]] = field(default_factory=list)

    def record(self, time: float, category: str, fields: Dict[str, Any]) -> None:
        """Store one entry (and notify listeners) if recording is active."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        entry = TraceEntry(time, category, fields)
        self.entries.append(entry)
        for listener in self._listeners:
            listener(entry)

    def subscribe(self, listener: Callable[[TraceEntry], None]) -> None:
        """Call ``listener`` synchronously for every recorded entry."""
        self._listeners.append(listener)

    def select(self, category: str, **match: Any) -> List[TraceEntry]:
        """Return entries of ``category`` whose fields match ``match``."""
        out = []
        for entry in self.entries:
            if entry.category != category:
                continue
            if all(entry.get(k) == v for k, v in match.items()):
                out.append(entry)
        return out

    def iter_category(self, category: str) -> Iterator[TraceEntry]:
        """Iterate entries of one category in record order."""
        return (e for e in self.entries if e.category == category)

    def clear(self) -> None:
        """Drop all stored entries (listeners stay subscribed)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    # -- analysis helpers ---------------------------------------------------

    def category_counts(self) -> Dict[str, int]:
        """Entry count per category."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.category] = counts.get(entry.category, 0) + 1
        return counts

    def field_stats(self, category: str, field_name: str) -> Dict[str, float]:
        """min/max/mean of a numeric field over one category.

        Entries lacking the field (or holding non-numeric values) are
        skipped; an all-empty selection returns an empty dict.
        """
        values = [
            entry.fields[field_name]
            for entry in self.iter_category(category)
            if isinstance(entry.fields.get(field_name), (int, float))
            and not isinstance(entry.fields.get(field_name), bool)
        ]
        if not values:
            return {}
        return {
            "count": float(len(values)),
            "min": float(min(values)),
            "max": float(max(values)),
            "mean": float(sum(values) / len(values)),
        }

    def summary(self) -> str:
        """Human-readable one-line-per-category digest."""
        counts = self.category_counts()
        if not counts:
            return "trace: empty"
        lines = [f"trace: {len(self.entries)} entries"]
        for category in sorted(counts):
            lines.append(f"  {category}: {counts[category]}")
        return "\n".join(lines)
