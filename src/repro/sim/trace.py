"""Trace recording for simulations.

Every subsystem records structured trace entries through
:meth:`repro.sim.kernel.Simulator.trace`.  Traces power the runtime monitor,
the XiL harness assertions and the benchmark reports.

Long-running campaigns should bound the tracer: with ``max_entries`` set
the tracer keeps only the most recent entries in a ring buffer, and with
``spill_path`` also set, evicted entries are appended to a JSONL file
instead of being lost — so memory stays constant while the full trace
survives on disk.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """A single timestamped observation."""

    time: float
    category: str
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def to_json(self) -> str:
        """One-line JSON form (non-serialisable field values are stringified)."""
        return json.dumps(
            {"time": self.time, "category": self.category, "fields": self.fields},
            default=str,
            separators=(",", ":"),
        )


def entry_from_json(line: str) -> TraceEntry:
    """Parse one JSONL line back into a :class:`TraceEntry`."""
    raw = json.loads(line)
    return TraceEntry(
        time=float(raw["time"]),
        category=str(raw["category"]),
        fields=dict(raw.get("fields", {})),
    )


def read_jsonl(path: str) -> List[TraceEntry]:
    """Load every entry from a JSONL trace file."""
    entries = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(entry_from_json(line))
    return entries


@dataclass
class Tracer:
    """Collects :class:`TraceEntry` records, optionally filtered by category.

    Attributes:
        enabled: master switch; a disabled tracer costs almost nothing.
        categories: if non-empty, only these categories are recorded.
        max_entries: if set, keep at most this many entries in memory
            (oldest evicted first — ring-buffer mode).
        spill_path: if set together with ``max_entries``, evicted entries
            are appended to this JSONL file instead of being dropped.
    """

    enabled: bool = True
    categories: Optional[set] = None
    entries: Any = field(default_factory=list)
    max_entries: Optional[int] = None
    spill_path: Optional[str] = None
    _listeners: List[Callable[[TraceEntry], None]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {self.max_entries}")
        if self.max_entries is not None and not isinstance(self.entries, deque):
            self.entries = deque(self.entries)
        self.evicted_count = 0
        self._spill_file = None

    def __getstate__(self) -> dict:
        # Snapshot support: an open spill file handle cannot be copied or
        # pickled; the restored tracer reopens it lazily on next eviction.
        state = self.__dict__.copy()
        state["_spill_file"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def record(self, time: float, category: str, fields: Dict[str, Any]) -> None:
        """Store one entry (and notify listeners) if recording is active."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        entry = TraceEntry(time, category, fields)
        if self.max_entries is not None and len(self.entries) >= self.max_entries:
            self._evict(self.entries.popleft())
        self.entries.append(entry)
        for listener in self._listeners:
            listener(entry)

    # -- bounded mode ------------------------------------------------------

    def _evict(self, entry: TraceEntry) -> None:
        self.evicted_count += 1
        if self.spill_path is None:
            return
        if self._spill_file is None:
            self._spill_file = open(self.spill_path, "a", encoding="utf-8")
        self._spill_file.write(entry.to_json())
        self._spill_file.write("\n")

    def flush(self) -> None:
        """Flush any open spill file to disk."""
        if self._spill_file is not None:
            self._spill_file.flush()

    def close(self) -> None:
        """Flush and close the spill file (reopened on the next eviction)."""
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None

    def export_jsonl(self, path: str) -> int:
        """Write the in-memory entries to ``path`` as JSONL; returns count."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.entries:
                fh.write(entry.to_json())
                fh.write("\n")
        return len(self.entries)

    # -- subscription ------------------------------------------------------

    def subscribe(self, listener: Callable[[TraceEntry], None]) -> None:
        """Call ``listener`` synchronously for every recorded entry."""
        self._listeners.append(listener)

    def select(self, category: str, **match: Any) -> List[TraceEntry]:
        """Return entries of ``category`` whose fields match ``match``."""
        out = []
        for entry in self.entries:
            if entry.category != category:
                continue
            if all(entry.get(k) == v for k, v in match.items()):
                out.append(entry)
        return out

    def iter_category(self, category: str) -> Iterator[TraceEntry]:
        """Iterate entries of one category in record order."""
        return (e for e in self.entries if e.category == category)

    def clear(self) -> None:
        """Drop all stored entries (listeners stay subscribed)."""
        self.entries.clear()
        self.evicted_count = 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- analysis helpers ---------------------------------------------------

    def category_counts(self) -> Dict[str, int]:
        """Entry count per category."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.category] = counts.get(entry.category, 0) + 1
        return counts

    def field_stats(self, category: str, field_name: str) -> Dict[str, float]:
        """min/max/mean of a numeric field over one category.

        Entries lacking the field (or holding non-numeric values) are
        skipped; an all-empty selection returns an empty dict.
        """
        values = []
        for entry in self.entries:
            if entry.category != category:
                continue
            value = entry.fields.get(field_name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(value)
        if not values:
            return {}
        return {
            "count": float(len(values)),
            "min": float(min(values)),
            "max": float(max(values)),
            "mean": float(sum(values) / len(values)),
        }

    def summary(self) -> str:
        """Human-readable one-line-per-category digest."""
        counts = self.category_counts()
        if not counts:
            return "trace: empty"
        lines = [f"trace: {len(self.entries)} entries"]
        for category in sorted(counts):
            lines.append(f"  {category}: {counts[category]}")
        return "\n".join(lines)
