"""Copy-on-write snapshots of a running simulation.

A snapshot captures the *complete deterministic state* of a
:class:`~repro.sim.kernel.Simulator` — clock, event heap and sequence
counters, named RNG streams, every component registered in the world
registry (network, platform, monitors, fault injectors …) plus anything
reachable from a pending event callback — as one consistent deep copy.

Copy-on-write boundary
----------------------

Immutable structure declared via :meth:`Simulator.share` (topologies,
ECU/bus specs, routing graphs, schedules, offers) is **aliased**: the
copy machinery stops at each shared object and every fork points at the
same instance.  Everything else — mutable leaves — is copied.  Internal
aliasing inside the mutable region is preserved (e.g. the kernel
sanitizer's cached heap list stays the *copied* queue's heap).

Mechanically, a same-process fork is a :mod:`pickle` round trip with a
``persistent_id`` hook: shared objects serialize as persistent ids and
deserialize back to the *original* instances, so the copy runs at
C speed and the shared structure is never traversed at all.  The
semantics are identical to ``copy.deepcopy`` with a memo pre-seeded
``memo[id(obj)] = obj`` per shared object — :func:`fork_world` falls
back to exactly that when an object defies pickling (e.g. user code
attached something with ``__reduce__`` quirks mid-experiment).

Restore semantics
-----------------

Python offers no way to rewind live objects in place, so ``restore()``
does not mutate an existing world: it materializes a **new** simulator
from the snapshot's pristine frozen copy.  That makes a snapshot
reusable — restore it as many times as you like, each restore is an
independent world — and makes ``restore()`` and ``fork()`` the same
operation at different times.

Pool hygiene: the event queue's free list is dropped on capture
(``EventQueue.__getstate__``), so a restored world starts with an empty
pool and can never resurrect call objects the source world is still
recycling.

Worlds that cannot fork
-----------------------

Live generator processes hold suspended Python frames, which neither
:func:`copy.deepcopy` nor :mod:`pickle` can capture.  Components that
participate in snapshots are therefore written in callback style (bound
methods rescheduling themselves); :func:`check_forkable` rejects worlds
with alive generator processes up front with a clear error naming them.
Similarly, snapshot-reachable callbacks must be bound methods or
:func:`functools.partial` objects — plain closures are deep-copy-atomic,
so a closure would smuggle shared mutable cells across worlds.
"""

from __future__ import annotations

import copy
import io
import pickle
from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["SnapshotError", "check_forkable", "fork_world", "SimSnapshot"]


class SnapshotError(SimulationError):
    """The world cannot be captured in its current state."""


def check_forkable(sim: "Simulator") -> None:
    """Raise :class:`SnapshotError` if ``sim`` cannot be safely copied.

    Two conditions block a capture: the simulator is inside ``run()``
    (the world is mid-event and not at a consistent instant), or alive
    generator processes exist (suspended frames are uncopyable).
    """
    if sim._running:
        raise SnapshotError(
            "cannot snapshot/fork while run() is executing; "
            "capture between run() calls"
        )
    live: List[str] = []
    for ref in sim._procs:
        proc = ref()
        if proc is not None and proc.alive and proc.gen is not None:
            live.append(proc.name)
    if live:
        names = ", ".join(repr(n) for n in sorted(live))
        raise SnapshotError(
            f"cannot snapshot/fork a world with live generator processes "
            f"({names}); rewrite them in callback style or let them finish"
        )


def _seed_memo(sim: "Simulator") -> Dict[int, object]:
    """Pre-seed a deepcopy memo so shared structure is aliased, not copied."""
    memo: Dict[int, object] = {}
    for obj in sim._shared:
        memo[id(obj)] = obj
    return memo


class _ForkPickler(pickle.Pickler):
    """Pickler that emits shared objects as persistent ids."""

    def __init__(self, buf: io.BytesIO, shared_ids: Dict[int, int]) -> None:
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._shared_ids = shared_ids

    def persistent_id(self, obj: object) -> Optional[int]:
        return self._shared_ids.get(id(obj))


class _ForkUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent ids to the original instances."""

    def __init__(self, buf: io.BytesIO, shared: List[object]) -> None:
        super().__init__(buf)
        self._shared = shared

    def persistent_load(self, pid: int) -> object:
        return self._shared[pid]


def _dump_world(sim: "Simulator") -> bytes:
    """Serialize ``sim`` with shared objects as persistent ids."""
    buf = io.BytesIO()
    shared_ids = {id(obj): i for i, obj in enumerate(sim._shared)}
    _ForkPickler(buf, shared_ids).dump(sim)
    return buf.getvalue()


def _load_world(blob: bytes, shared: List[object]) -> "Simulator":
    """Materialize a world from :func:`_dump_world` output, aliasing
    persistent ids back to the *original* shared instances."""
    return _ForkUnpickler(io.BytesIO(blob), shared).load()


def fork_world(sim: "Simulator") -> "Simulator":
    """Return an independent copy of ``sim`` (shared structure aliased).

    The fast path is a pickle round trip (C speed) whose persistent-id
    hook aliases every object in ``sim._shared`` instead of copying it.
    Worlds containing something picklable-by-deepcopy-only fall back to
    :func:`copy.deepcopy` with a pre-seeded memo — same semantics,
    slower.
    """
    check_forkable(sim)
    try:
        return _load_world(_dump_world(sim), sim._shared)
    except (pickle.PicklingError, TypeError, AttributeError):
        return copy.deepcopy(sim, _seed_memo(sim))


class SimSnapshot:
    """A frozen, reusable copy of a simulation world.

    Obtain one via :meth:`Simulator.snapshot`.  The capture serializes
    the world **once** (shared structure reduced to persistent ids, so
    it is neither traversed nor copied); every :meth:`restore` then only
    pays the C-speed deserialize, so one snapshot fans out to any number
    of independent variants at a fraction of a rebuild.  :meth:`to_bytes`
    / :meth:`from_bytes` give a self-contained frozen form for shipping
    a warmed-up world once per executor worker as shared context.

    Worlds whose objects pickle poorly are captured via the deepcopy
    fallback instead: the snapshot then owns a pristine world copy and
    every restore deep-copies it — identical semantics, slower.
    """

    __slots__ = ("_blob", "_shared", "_pristine", "_now")

    def __init__(
        self,
        blob: Optional[bytes],
        shared: Optional[List[object]],
        pristine: Optional["Simulator"],
        now: float,
    ) -> None:
        self._blob = blob
        self._shared = shared
        self._pristine = pristine
        self._now = now

    @classmethod
    def capture(cls, sim: "Simulator") -> "SimSnapshot":
        """Snapshot ``sim`` (which keeps running, unaffected)."""
        check_forkable(sim)
        try:
            blob = _dump_world(sim)
        except (pickle.PicklingError, TypeError, AttributeError):
            pristine = copy.deepcopy(sim, _seed_memo(sim))
            return cls(None, None, pristine, sim.now)
        # alias the live shared list: restores of this snapshot point at
        # the same shared instances as the source world (the CoW boundary)
        return cls(blob, sim._shared, None, sim.now)

    def restore(self) -> "Simulator":
        """Materialize a new independent world at the captured instant."""
        if self._blob is not None:
            return _load_world(self._blob, self._shared)
        return copy.deepcopy(self._pristine, _seed_memo(self._pristine))

    @property
    def now(self) -> float:
        """Simulated time at which the world was captured."""
        return self._now

    def to_bytes(self) -> bytes:
        """Serialize the frozen world (for cross-process shipping).

        Self-contained: the shared objects are serialized too (they
        cannot be aliased across process boundaries); restores from the
        shipped copy alias the receiving process's copy of them.
        """
        if self._blob is not None:
            payload = ("blob", self._blob, self._shared, self._now)
        else:
            payload = ("world", self._pristine, None, self._now)
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimSnapshot":
        """Rebuild a snapshot serialized with :meth:`to_bytes`."""
        kind, primary, shared, now = pickle.loads(data)
        if kind == "blob":
            return cls(primary, shared, None, now)
        return cls(None, None, primary, now)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SimSnapshot t={self._now:.6f}>"
