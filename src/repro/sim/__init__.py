"""Discrete-event simulation kernel.

This package is the substrate for every other subsystem: a deterministic
event queue, a SimPy-style process model, trace recording, seeded random
streams and shared-resource primitives.
"""

from .events import PRIORITY_LATE, PRIORITY_NORMAL, PRIORITY_URGENT, EventQueue, ScheduledCall
from .kernel import Interrupted, Process, Signal, Simulator, Timeout
from .resources import Resource, Store, ThroughputServer
from .rng import RngStreams
from .snapshot import SimSnapshot, SnapshotError, fork_world
from .trace import TraceEntry, Tracer, read_jsonl

__all__ = [
    "EventQueue",
    "Interrupted",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "Resource",
    "RngStreams",
    "ScheduledCall",
    "Signal",
    "SimSnapshot",
    "Simulator",
    "SnapshotError",
    "Store",
    "ThroughputServer",
    "Timeout",
    "TraceEntry",
    "Tracer",
    "fork_world",
    "read_jsonl",
]
