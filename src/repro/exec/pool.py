"""A deterministic multi-process executor for independent simulation runs.

:class:`ParallelExecutor` fans a batch of :class:`~repro.exec.jobs.SimJob`
specs out over a pool of **persistent warm worker processes** and returns
results **in job order**, no matter which workers finished first.

Architecture (why parallel wins):

* **Warm persistent pool** — workers are plain long-lived processes
  joined to the parent by duplex pipes.  Each worker imports :mod:`repro`
  once and then serves many chunks, batches and campaigns; the fork/spawn
  and import cost is paid once per executor, not once per batch.  Use
  :meth:`warm_up` to pay it before a timed region.
* **Cost-model chunking** — with ``chunk_size=None`` the executor sizes
  chunks from measured per-job runtime (an EMA over every completed job,
  seeded by the optional ``SimJob.cost_hint``): each chunk targets
  ``target_chunk_seconds`` of work so one IPC round-trip is amortised
  over many short sims, while a fair-share cap keeps every worker busy.
  Until the first measurement arrives, single-job probe chunks run.
* **Overlapped dispatch/collection** — the parent tops up every idle
  worker before draining ready pipes, so submission of chunk *k+1*
  overlaps execution of chunk *k*; workers reply with one pre-pickled
  bytes blob per chunk (compact tuples + metric digests, no rich result
  objects cross the pipe).
* **Surgical failure recovery** — a chunk that exceeds its deadline
  (``job_timeout * len(chunk) + grace``) fails only its own jobs;
  **only that worker** is killed and respawned, the rest of the warm
  pool keeps serving.  Failed jobs retry (same seed) on healthy workers
  up to ``retries`` times.
* **Worker supervision** — workers heartbeat over their duplex pipe
  while a chunk is executing, so the parent distinguishes a *slow* job
  (still beating) from a *hung or dead* worker (beats stopped, or pipe
  EOF).  A hung worker is escalated SIGTERM → SIGKILL under a bounded
  grace budget and surgically rebuilt, and its in-flight chunk is
  **re-dispatched** to a healthy worker — safe because per-job seeds
  derive from ``(master_seed, job_id)`` alone, a retried job replays
  the identical draws, and a result is recorded at most once, so
  redispatch can neither diverge nor double-count.  Supervision health
  is published through :mod:`repro.obs` as
  ``pool.supervisor.{restarts,hangs,redispatches,escalations}``.

Guarantees:

* **Determinism** — each job's RNG seed is derived from the master seed
  and the job id only, so results are byte-identical to serial execution
  for any worker count, chunking, cost-model state, or completion order.
* **Bounded failure handling** — a job that raises is retried up to
  ``retries`` times (the retry replays the same seed).
* **Merged observability** — each job runs against a fresh
  :class:`~repro.obs.metrics.MetricsRegistry`; per-job digests are folded
  into one :mod:`repro.obs` batch report.

With ``workers=1`` the batch runs inline through the *same* chunk-runner
code path — that is the reference serial execution all parallel runs
must match, and the right mode when jobs are too short (microseconds)
for any fan-out to pay for its IPC.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
from collections import deque
from multiprocessing import connection as _mp_connection
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..obs.metrics import MetricsRegistry
from .jobs import BatchReport, JobContext, JobResult, SimJob, derive_job_seed

#: (index, job, seed, attempt) — what travels to a worker per job
_Payload = Tuple[int, SimJob, int, int]

#: explicit preference order — ``fork`` is cheapest (inherits the warm
#: parent), ``forkserver`` next, ``spawn`` is the portable fallback
_START_METHODS = ("fork", "forkserver", "spawn")

#: EMA weight for new per-job runtime observations
_COST_ALPHA = 0.2

#: control frames on the worker pipe (never valid pickles)
_STOP = b"\x00stop"
_PING = b"\x00ping"
_PONG = b"\x00pong"
#: heartbeat frame a busy worker emits every ``heartbeat_period`` seconds
_BEAT = b"\x00beat"
#: chaos frame: the worker exits without replying (clean pipe EOF)
_DIE = b"\x00die"


def _pick_start_method(requested: Optional[str]) -> str:
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ExecutionError(
                f"start_method {requested!r} not available on this platform "
                f"(available: {available})"
            )
        return requested
    for method in _START_METHODS:
        if method in available:
            return method
    raise ExecutionError(
        f"no supported multiprocessing start method: tried "
        f"{list(_START_METHODS)}, platform offers {available}"
    )


def _run_chunk(payload: Sequence[_Payload],
               shared: Any = None) -> List[tuple]:
    """Execute a chunk of jobs in this process (worker entry point).

    Per-job exceptions are caught and reported as data so one bad job
    neither loses its chunk-mates' completed work nor kills the worker.
    """
    out = []
    pid = os.getpid()
    for index, job, seed, attempt in payload:
        registry = MetricsRegistry()
        ctx = JobContext(job_id=job.job_id, seed=seed, attempt=attempt,
                         metrics=registry, shared=shared)
        start = perf_counter()
        try:
            value = job.run(ctx)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            out.append((index, False, repr(exc), None, pid,
                        perf_counter() - start))
        else:
            digest: Optional[Dict[str, Any]] = None
            if len(registry):
                digest = {"metrics": registry.snapshot()}
            out.append((index, True, value, digest, pid,
                        perf_counter() - start))
    return out


def _heartbeat_loop(conn, send_lock, busy, stopped, period: float) -> None:
    """Worker-side supervision thread: beat while a chunk is executing.

    Beats are only emitted while the main loop is inside a chunk, so an
    idle worker writes nothing (the pipe buffer of a long-idle pool can
    never fill with stale beats) and the parent can read a missing beat
    on a *busy* worker as "this process is hung or gone", not merely
    "this job is slow" — a slow job still beats, because the beats come
    from this thread, not from job code.
    """
    while not stopped.wait(period):
        if not busy.is_set():
            continue
        with send_lock:
            if not busy.is_set():
                continue
            try:
                conn.send_bytes(_BEAT)
            except (BrokenPipeError, OSError):
                return


def _worker_main(conn, heartbeat_period: float = 0.0) -> None:
    """Long-lived worker loop: recv a pickled chunk, reply with bytes.

    The worker imports :mod:`repro` once (a no-op under ``fork``, the
    real warm-up under ``spawn``/``forkserver``) and then serves chunks
    until it receives the stop frame or its pipe closes.  Replies travel
    as one pre-pickled blob per chunk — compact tuples, not rich result
    objects.  With ``heartbeat_period > 0`` a daemon thread beats on the
    pipe while a chunk executes (see :func:`_heartbeat_loop`).
    """
    import repro  # noqa: F401 - warm the module cache once per worker

    send_lock = threading.Lock()
    busy = threading.Event()
    stopped = threading.Event()
    if heartbeat_period > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, send_lock, busy, stopped, heartbeat_period),
            daemon=True,
        ).start()

    def send(blob: bytes) -> None:
        with send_lock:
            conn.send_bytes(blob)

    shared_token: Optional[int] = None
    shared_obj: Any = None
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if blob == _STOP:
            break
        if blob == _DIE:
            os._exit(3)  # chaos: vanish without a reply (pipe EOF)
        if blob == _PING:
            send(_PONG)
            continue
        token, ctx_blob, payload = pickle.loads(blob)
        if token is None:
            shared = None
        elif token == shared_token:
            shared = shared_obj  # context cached from an earlier chunk
        elif ctx_blob is not None:
            shared_obj = pickle.loads(ctx_blob)
            shared_token = token
            shared = shared_obj
        else:  # pragma: no cover - parent/worker token desync
            out = [(index, False,
                    f"shared context token {token} unknown to worker",
                    None, os.getpid(), 0.0)
                   for (index, _job, _seed, _attempt) in payload]
            send(pickle.dumps(out, pickle.HIGHEST_PROTOCOL))
            continue
        busy.set()
        try:
            out = _run_chunk(payload, shared)
        finally:
            busy.clear()
        try:
            reply = pickle.dumps(out, pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # noqa: BLE001 - unpicklable job value
            out = [(index, False,
                    f"job value not picklable: {exc!r}", None,
                    os.getpid(), 0.0)
                   for (index, _job, _seed, _attempt) in payload]
            reply = pickle.dumps(out, pickle.HIGHEST_PROTOCOL)
        try:
            send(reply)
        except (BrokenPipeError, OSError):
            break
    stopped.set()
    try:
        conn.close()
    except OSError:  # pragma: no cover - already torn down
        pass


class PoolSupervisor:
    """Health counters for the warm pool, published via :mod:`repro.obs`.

    The supervisor state machine is: ``HEALTHY`` → (missed heartbeat
    budget) → ``HUNG`` → SIGTERM → (grace expired) → SIGKILL →
    ``REBUILT`` — and every transition increments one of these counters,
    so a campaign can report how much surgery its substrate needed.
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        #: workers surgically rebuilt (any cause: death, hang, poison)
        self.restarts = self.metrics.counter("pool.supervisor.restarts")
        #: busy workers whose heartbeats stopped (hung, not merely slow)
        self.hangs = self.metrics.counter("pool.supervisor.hangs")
        #: jobs re-dispatched to a healthy worker after their worker
        #: died or hung mid-chunk (idempotent: same seed, recorded once)
        self.redispatches = self.metrics.counter(
            "pool.supervisor.redispatches"
        )
        #: teardowns that had to escalate SIGTERM -> SIGKILL
        self.escalations = self.metrics.counter(
            "pool.supervisor.escalations"
        )

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable counter state (a ``repro.obs`` snapshot)."""
        return self.metrics.snapshot()


class _WorkerHandle:
    """One persistent worker process plus its duplex pipe."""

    __slots__ = ("proc", "conn", "chunk", "deadline", "ctx_token",
                 "last_beat")

    def __init__(self, ctx, heartbeat_period: float = 0.0) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main,
                                args=(child_conn, heartbeat_period),
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        #: payload list currently in flight on this worker (None = idle)
        self.chunk: Optional[List[_Payload]] = None
        #: absolute perf_counter deadline for the in-flight chunk
        self.deadline: Optional[float] = None
        #: token of the shared context this worker has cached
        self.ctx_token: Optional[int] = None
        #: perf_counter instant of the last heartbeat (or dispatch)
        self.last_beat: float = perf_counter()

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def ping(self) -> bool:
        """Round-trip the pipe once (forces import/warm-up to finish).

        Stale heartbeat frames left over from a previous chunk are
        drained and skipped — only the pong answers the ping.
        """
        try:
            self.conn.send_bytes(_PING)
            for _ in range(64):
                reply = self.conn.recv_bytes()
                if reply == _PONG:
                    return True
                if reply != _BEAT:  # pragma: no cover - protocol desync
                    return False
            return False  # pragma: no cover - beat flood
        except (EOFError, OSError):
            return False

    def request_stop(self) -> None:
        """Ask the worker to exit (non-blocking; pair with join/kill)."""
        try:
            self.conn.send_bytes(_STOP)
        except (BrokenPipeError, OSError):
            pass

    def join_until(self, deadline: float) -> bool:
        """Join with an absolute perf_counter deadline; True if reaped."""
        self.proc.join(timeout=max(0.0, deadline - perf_counter()))
        return not self.proc.is_alive()

    def close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def stop(self, grace: float = 2.0) -> bool:
        """Ask the worker to exit and reap it within a bounded budget.

        Escalates stop-frame → SIGTERM → SIGKILL, waiting ``grace``
        seconds between steps, so a worker that ignores both the frame
        and SIGTERM can stall teardown for at most ``~2 * grace``
        seconds before being killed outright.  Returns True if the
        SIGKILL escalation was needed.
        """
        self.request_stop()
        self.proc.join(timeout=grace)
        return self.kill(grace)

    def kill(self, grace: float = 2.0) -> bool:
        """Hard-stop the worker: SIGTERM, then SIGKILL after ``grace``.

        Returns True if the worker ignored SIGTERM and had to be
        SIGKILLed (the escalation the supervisor counts).  SIGKILL
        cannot be caught or ignored — a stopped (SIGSTOP) or
        signal-masking worker still dies here.
        """
        escalated = False
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=grace)
        if self.proc.is_alive():
            self.proc.kill()
            escalated = True
            self.proc.join(timeout=2.0)
        self.close_conn()
        return escalated


class ParallelExecutor:
    """Runs batches of :class:`SimJob` across a warm worker-process pool.

    Workers are created lazily (or eagerly via :meth:`warm_up`) and
    persist across :meth:`run_jobs` calls — a GA evaluating one
    population per generation, or a benchmark running three campaigns
    back to back, pays the spawn/import cost once.  Use as a context
    manager or call :meth:`close` when done; crashed workers are
    respawned transparently on the next run.

    Args:
        workers: worker-process count; ``1`` executes inline (the
            serial reference path).  Defaults to the machine's CPU count.
        master_seed: root of all per-job seed derivation (a per-run
            override can be passed to :meth:`run_jobs`).
        retries: extra attempts granted to a failed job (same seed).
        job_timeout: wall-clock budget **per job** in seconds; a chunk's
            deadline is ``job_timeout * len(chunk) + grace``.  ``None``
            waits forever.
        grace: fixed slack in seconds added to every chunk deadline to
            absorb dispatch/unpickle latency (default ``1.0``).
        chunk_size: fixed jobs per worker submission; ``None`` (default)
            enables cost-model chunking (see ``target_chunk_seconds``).
        target_chunk_seconds: desired wall-clock duration of one chunk
            under cost-model chunking; chunks are sized to
            ``target_chunk_seconds / estimated_job_seconds``, capped to
            a fair share of the remaining jobs so workers never starve.
        start_method: multiprocessing start method; defaults to the
            first available of ``fork``, ``forkserver``, ``spawn``.
        heartbeat_period: seconds between worker heartbeats while a
            chunk is executing (``0`` disables the beat thread).
        heartbeat_timeout: if set, a busy worker that has not beaten
            for this many seconds is declared **hung** — killed with
            SIGTERM→SIGKILL escalation, rebuilt, and its in-flight
            chunk re-dispatched to a healthy worker.  Must exceed
            ``heartbeat_period``.  ``None`` (default) disables hung
            detection (the per-chunk deadline still applies).
        max_redispatches: how many times one job may be re-dispatched
            after its worker died or hung mid-chunk before the job is
            failed outright (a poison-pill backstop).
        shutdown_grace: per-escalation-step teardown budget in seconds;
            :meth:`close` escalates stop-frame → SIGTERM → SIGKILL so a
            SIGTERM-ignoring worker can stall interpreter shutdown for
            at most ``~2 * shutdown_grace`` seconds.
        chaos: optional chaos harness (see
            :class:`repro.exec.recovery.ExecChaos`) whose
            ``on_dispatch(handle, executor)`` hook fires after every
            chunk dispatch; ``None`` (default) keeps the hot path at a
            single attribute test.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        master_seed: int = 0,
        retries: int = 1,
        job_timeout: Optional[float] = None,
        grace: float = 1.0,
        chunk_size: Optional[int] = None,
        target_chunk_seconds: float = 0.05,
        start_method: Optional[str] = None,
        heartbeat_period: float = 0.5,
        heartbeat_timeout: Optional[float] = None,
        max_redispatches: int = 2,
        shutdown_grace: float = 2.0,
        chaos: Any = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ExecutionError(f"retries must be >= 0, got {retries}")
        if grace < 0:
            raise ExecutionError(f"grace must be >= 0, got {grace}")
        if chunk_size is not None and chunk_size < 1:
            raise ExecutionError(f"chunk_size must be >= 1, got {chunk_size}")
        if target_chunk_seconds <= 0:
            raise ExecutionError(
                f"target_chunk_seconds must be > 0, got {target_chunk_seconds}"
            )
        if heartbeat_period < 0:
            raise ExecutionError(
                f"heartbeat_period must be >= 0, got {heartbeat_period}"
            )
        if heartbeat_timeout is not None:
            if heartbeat_period <= 0:
                raise ExecutionError(
                    "heartbeat_timeout requires heartbeat_period > 0 "
                    "(workers must beat for the parent to miss beats)"
                )
            if heartbeat_timeout <= heartbeat_period:
                raise ExecutionError(
                    f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                    f"heartbeat_period ({heartbeat_period})"
                )
        if max_redispatches < 0:
            raise ExecutionError(
                f"max_redispatches must be >= 0, got {max_redispatches}"
            )
        if shutdown_grace < 0:
            raise ExecutionError(
                f"shutdown_grace must be >= 0, got {shutdown_grace}"
            )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.master_seed = master_seed
        self.retries = retries
        self.job_timeout = job_timeout
        self.grace = grace
        self.chunk_size = chunk_size
        self.target_chunk_seconds = target_chunk_seconds
        self.start_method = _pick_start_method(start_method)
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.max_redispatches = max_redispatches
        self.shutdown_grace = shutdown_grace
        self.chaos = chaos
        self.supervisor = PoolSupervisor()
        self._ctx = None
        self._handles: List[_WorkerHandle] = []
        #: EMA of per-job wall-clock seconds (the cost model)
        self._cost_ema: Optional[float] = None
        #: (object, token, pickled bytes) of the last shared context
        self._context_cache: Optional[Tuple[Any, int, bytes]] = None
        self._context_seq = 0

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def warm_up(self) -> None:
        """Spawn the full pool now and wait until every worker answers.

        Call before a timed region so fork/spawn and the workers'
        one-time ``import repro`` happen outside the measurement.
        Idempotent; a no-op for ``workers=1``.
        """
        if self.workers <= 1:
            return
        for handle in self._ensure_workers():
            if not handle.ping():
                raise ExecutionError(
                    f"worker pid={handle.proc.pid} failed its warm-up ping"
                )

    def close(self, grace: Optional[float] = None) -> None:
        """Shut the worker pool down (idempotent, bounded).

        Teardown escalates pool-wide: every worker gets the stop frame
        at once, then the whole pool shares one ``grace`` join window,
        then stragglers get SIGTERM and one more shared window, then
        SIGKILL.  Total wall time is bounded by ``~2 * grace`` no matter
        how many workers ignore SIGTERM — a single sleep-forever worker
        can no longer stall interpreter exit (this runs from an atexit
        hook for shared pools).  Each SIGKILL escalation is counted in
        ``supervisor.escalations``.
        """
        handles, self._handles = self._handles, []
        if not handles:
            return
        if grace is None:
            grace = self.shutdown_grace
        for handle in handles:
            handle.request_stop()
        deadline = perf_counter() + grace
        stragglers = [h for h in handles if not h.join_until(deadline)]
        for handle in stragglers:
            if handle.proc.is_alive():
                handle.proc.terminate()
        deadline = perf_counter() + grace
        for handle in stragglers:
            if not handle.join_until(deadline) and handle.proc.is_alive():
                handle.proc.kill()
                self.supervisor.escalations.inc()
                handle.proc.join(timeout=2.0)
        for handle in handles:
            handle.close_conn()

    def _discard_workers(self) -> None:
        """Hard-drop every worker (hung, poisoned, or unknown state)."""
        handles, self._handles = self._handles, []
        for handle in handles:
            if handle.kill(self.shutdown_grace):
                self.supervisor.escalations.inc()

    def _context(self):
        if self._ctx is None:
            self._ctx = multiprocessing.get_context(self.start_method)
        return self._ctx

    def _ensure_workers(self) -> List[_WorkerHandle]:
        """Top the pool up to ``workers`` live processes.

        Dead handles (worker crashed between runs, or killed after a
        poisoned chunk) are replaced individually — the warm survivors
        are never torn down.
        """
        ctx = self._context()
        kept = []
        for handle in self._handles:
            if handle.alive:
                kept.append(handle)
            else:
                handle.kill(self.shutdown_grace)
        while len(kept) < self.workers:
            kept.append(_WorkerHandle(ctx, self.heartbeat_period))
        self._handles = kept
        return self._handles

    def _replace_worker(self, handle: _WorkerHandle) -> _WorkerHandle:
        """Kill one poisoned worker and swap a fresh one into its slot."""
        if handle.kill(self.shutdown_grace):
            self.supervisor.escalations.inc()
        self.supervisor.restarts.inc()
        fresh = _WorkerHandle(self._context(), self.heartbeat_period)
        for i, existing in enumerate(self._handles):
            if existing is handle:
                self._handles[i] = fresh
                break
        else:  # pragma: no cover - handle always registered
            self._handles.append(fresh)
        return fresh

    # -- execution -------------------------------------------------------

    def run(self, jobs: Sequence[SimJob], *,
            master_seed: Optional[int] = None,
            context: Any = None) -> List[Any]:
        """Execute ``jobs``; return their values in job order.

        Raises :class:`ExecutionError` if any job still fails after its
        retry budget.  Use :meth:`run_jobs` for non-strict execution.
        """
        report = self.run_jobs(jobs, master_seed=master_seed,
                               context=context)
        if report.failed:
            bad = [r for r in report.results if not r.ok]
            detail = "; ".join(f"{r.job_id}: {r.error}" for r in bad[:5])
            raise ExecutionError(
                f"{report.failed}/{len(report.results)} jobs failed "
                f"after {self.retries} retries ({detail})"
            )
        return report.values

    def run_jobs(self, jobs: Sequence[SimJob], *,
                 master_seed: Optional[int] = None,
                 context: Any = None,
                 on_result: Any = None) -> BatchReport:
        """Execute ``jobs``; return a :class:`BatchReport` in job order.

        Failed jobs (after retries) appear as :class:`JobResult` entries
        with ``error`` set — the caller decides whether that is fatal.

        ``master_seed`` overrides the executor's configured seed for
        this batch only, so one warm pool can serve many differently
        seeded campaigns without rebuilding.

        ``context`` is an optional picklable object every job of the
        batch reads through ``ctx.shared``.  It is pickled once per
        distinct object and shipped once per worker (workers cache it
        across batches), so a heavy model shared by hundreds of jobs
        crosses each pipe exactly once — not once per job.  It must be
        treated as read-only: worker-side mutations are invisible to
        the parent and to jobs on other workers.

        ``on_result`` is an optional callback fired once per
        **successful** :class:`JobResult` in completion order, as soon
        as the result is recorded — the durability hook checkpoint
        stores use to persist completed shards mid-batch, so a crash
        partway through a batch loses only the unflushed tail.  An
        exception raised by the callback aborts the batch (workers are
        discarded, the exception propagates).
        """
        jobs = list(jobs)
        seen: Dict[str, int] = {}
        for index, job in enumerate(jobs):
            if job.job_id in seen:
                raise ExecutionError(
                    f"duplicate job_id {job.job_id!r} (indices "
                    f"{seen[job.job_id]} and {index}): seed derivation "
                    f"requires unique ids"
                )
            seen[job.job_id] = index
        report = BatchReport()
        if not jobs:
            return report
        seed_root = self.master_seed if master_seed is None else master_seed
        pending: List[_Payload] = [
            (i, job, derive_job_seed(seed_root, job.job_id), 0)
            for i, job in enumerate(jobs)
        ]
        results: Dict[int, JobResult] = {}
        try:
            for round_no in range(self.retries + 1):
                failed = self._run_round(pending, results, context,
                                         on_result)
                if not failed or round_no == self.retries:
                    break
                report.retried += len(failed)
                # completion order is timing-dependent; re-sort so retry
                # rounds dispatch deterministically
                pending = sorted(
                    ((i, job, seed, attempt + 1)
                     for (i, job, seed, attempt) in failed),
                    key=lambda p: p[0],
                )
        except BaseException:
            # error escaping mid-batch (dispatch bug, KeyboardInterrupt):
            # workers may hold half-submitted chunks — drop them all so
            # no orphan processes outlive the failed call; the next run
            # rebuilds transparently
            self._discard_workers()
            raise
        report.results = [results[i] for i in range(len(jobs))]
        report.failed = sum(1 for r in report.results if not r.ok)
        return report

    def _run_round(
        self, payloads: List[_Payload], results: Dict[int, JobResult],
        context: Any = None, on_result: Any = None,
    ) -> List[_Payload]:
        """Run one attempt round; record outcomes; return failed payloads."""
        by_index = {p[0]: p for p in payloads}
        failed: List[_Payload] = []

        def record(raw: tuple) -> None:
            index, ok, value, digest, pid, elapsed = raw
            _, job, seed, attempt = by_index[index]
            result = JobResult(
                index=index, job_id=job.job_id, seed=seed,
                attempts=attempt + 1, worker_pid=pid, elapsed=elapsed,
            )
            if ok:
                result.value = value
                result.digest = digest
            else:
                result.error = value
                failed.append(by_index[index])
            results[index] = result
            if ok and on_result is not None:
                on_result(result)

        if self.workers == 1:
            for raw in _run_chunk(payloads, context):
                record(raw)
            return failed

        token, ctx_blob = self._context_frame(context)
        self._seed_cost_model(payloads)
        pending = deque(payloads)
        idle = deque(self._ensure_workers())
        busy: Dict[Any, _WorkerHandle] = {}
        #: per-job redispatch count this round (worker death/hang only)
        redispatched: Dict[int, int] = {}

        def fail_chunk(handle: _WorkerHandle, reason: str) -> None:
            pid = handle.proc.pid or 0
            for p in handle.chunk or ():
                record((p[0], False, reason, None, pid, 0.0))
            idle.append(self._replace_worker(handle))

        def requeue(handle: _WorkerHandle, reason: str, *,
                    hang: bool = False) -> None:
            """Rebuild a dead/hung worker; re-dispatch its chunk.

            Re-dispatch is idempotent: each payload carries its derived
            seed, so the retried job replays identical draws, and
            ``record`` runs at most once per (index, round).  A
            per-round budget of ``max_redispatches`` per job stops a
            poison-pill chunk from killing workers forever — past the
            budget its jobs fail with the last ``reason``.
            """
            if hang:
                self.supervisor.hangs.inc()
            chunk = handle.chunk or []
            pid = handle.proc.pid or 0
            idle.append(self._replace_worker(handle))
            retriable = []
            for p in chunk:
                count = redispatched.get(p[0], 0)
                if count < self.max_redispatches:
                    redispatched[p[0]] = count + 1
                    retriable.append(p)
                else:
                    record((p[0], False,
                            f"{reason} (gave up after {count} redispatches)",
                            None, pid, 0.0))
            if retriable:
                pending.extendleft(reversed(retriable))
                self.supervisor.redispatches.inc(len(retriable))

        while pending or busy:
            # dispatch first: every idle worker gets its next chunk
            # before we block collecting, overlapping submission with
            # execution and drain
            while pending and idle:
                handle = idle.popleft()
                chunk = self._carve(pending)
                # ship the shared context only to workers that don't
                # already cache this batch's token
                ship_ctx = (token is not None
                            and handle.ctx_token != token)
                frame = (token, ctx_blob if ship_ctx else None, chunk)
                try:
                    blob = pickle.dumps(frame, pickle.HIGHEST_PROTOCOL)
                    handle.conn.send_bytes(blob)
                except (BrokenPipeError, OSError):
                    # pipe died between runs: replace the worker and
                    # put the chunk back for the next idle one
                    pending.extendleft(reversed(chunk))
                    idle.append(self._replace_worker(handle))
                    continue
                except Exception as exc:  # noqa: BLE001 - unpicklable job
                    for p in chunk:
                        record((p[0], False,
                                f"job not picklable: {exc!r}", None, 0, 0.0))
                    idle.append(handle)
                    continue
                if ship_ctx:
                    handle.ctx_token = token
                handle.chunk = chunk
                handle.last_beat = perf_counter()
                if self.job_timeout is not None:
                    handle.deadline = (perf_counter()
                                       + self.job_timeout * len(chunk)
                                       + self.grace)
                busy[handle.conn] = handle
                if self.chaos is not None:
                    self.chaos.on_dispatch(handle, self)
            if not busy:
                break  # nothing in flight and nothing dispatchable
            deadlines = [h.deadline for h in busy.values()
                         if h.deadline is not None]
            if self.heartbeat_timeout is not None:
                deadlines += [h.last_beat + self.heartbeat_timeout
                              for h in busy.values()]
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines) - perf_counter())
            ready = _mp_connection.wait(list(busy), timeout)
            for conn in ready:
                handle = busy[conn]
                try:
                    blob = handle.conn.recv_bytes()
                except (EOFError, OSError) as exc:
                    del busy[conn]
                    requeue(handle, f"worker died mid-chunk: {exc!r}")
                    continue
                if blob == _BEAT:
                    # still executing — refresh liveness, stay busy
                    handle.last_beat = perf_counter()
                    continue
                del busy[conn]
                for raw in pickle.loads(blob):
                    record(raw)
                    self._observe_cost(raw)
                handle.chunk = None
                handle.deadline = None
                idle.append(handle)
            # deadline sweep — a hung worker only poisons its own slot.
            # Deadline overrun keeps fail semantics (the job *ran* too
            # long); only death/missed-heartbeat paths re-dispatch.
            now = perf_counter()
            for conn in [c for c, h in busy.items()
                         if h.deadline is not None and h.deadline <= now]:
                handle = busy.pop(conn)
                n = len(handle.chunk or ())
                budget = (self.job_timeout or 0.0) * n + self.grace
                fail_chunk(
                    handle,
                    f"TimeoutError: chunk of {n} jobs exceeded its "
                    f"{budget:.3f}s deadline "
                    f"(job_timeout={self.job_timeout}, grace={self.grace})",
                )
            # heartbeat sweep — a busy worker whose beats stopped is
            # hung (SIGSTOPped, deadlocked, or livelocked in C code):
            # a merely slow job would still beat, because beats come
            # from the worker's supervision thread, not from job code
            if self.heartbeat_timeout is not None:
                now = perf_counter()
                for conn in [c for c, h in busy.items()
                             if h.last_beat + self.heartbeat_timeout <= now]:
                    handle = busy.pop(conn)
                    silent = now - handle.last_beat
                    requeue(
                        handle,
                        f"worker hung: no heartbeat for {silent:.3f}s "
                        f"(heartbeat_timeout={self.heartbeat_timeout})",
                        hang=True,
                    )
        return failed

    def _context_frame(self, context: Any) -> Tuple[Optional[int],
                                                    Optional[bytes]]:
        """``(token, blob)`` transport frame for a batch's shared context.

        The blob is pickled once per distinct context object and reused
        across retry rounds, consecutive batches and worker respawns —
        workers that already cache the token receive only the token.
        """
        if context is None:
            return None, None
        cached = self._context_cache
        if cached is not None and cached[0] is context:
            return cached[1], cached[2]
        self._context_seq += 1
        blob = pickle.dumps(context, pickle.HIGHEST_PROTOCOL)
        self._context_cache = (context, self._context_seq, blob)
        return self._context_seq, blob

    # -- cost model ------------------------------------------------------

    def _seed_cost_model(self, payloads: Sequence[_Payload]) -> None:
        """Prime the runtime estimate from job-declared ``cost_hint``s."""
        if self._cost_ema is not None:
            return
        hints = [job.cost_hint for _, job, _, _ in payloads
                 if getattr(job, "cost_hint", None)]
        if hints:
            self._cost_ema = sum(hints) / len(hints)

    def _observe_cost(self, raw: tuple) -> None:
        """Fold one completed job's measured runtime into the EMA."""
        ok, elapsed = raw[1], raw[5]
        if not ok or elapsed <= 0:
            return
        if self._cost_ema is None:
            self._cost_ema = elapsed
        else:
            self._cost_ema += _COST_ALPHA * (elapsed - self._cost_ema)

    def _carve(self, pending: deque) -> List[_Payload]:
        """Pop the next chunk off ``pending``, sized by the cost model.

        Fixed ``chunk_size`` wins if set.  Otherwise: no estimate yet →
        single-job probe chunks (the first round of measurements);
        with an estimate → ``target_chunk_seconds`` worth of jobs,
        capped at a fair share of what remains so the tail of a batch
        still spreads across all workers.
        """
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            est = self._cost_ema
            if est is None or est <= 0.0:
                size = 1
            else:
                size = max(1, int(self.target_chunk_seconds / est))
                fair = -(-len(pending) // max(1, self.workers * 2))
                size = max(1, min(size, fair))
        size = min(size, len(pending))
        return [pending.popleft() for _ in range(size)]

    # -- planning helpers for heavy-context jobs -------------------------

    def plan_batches(self, n_items: int) -> int:
        """How many jobs a heavy-context batch of ``n_items`` should form.

        For fan-out sites whose jobs each carry an expensive pickled
        context (e.g. a DSE problem with its full system model), fewer
        jobs mean fewer copies of that context on the wire.  One job per
        worker is the floor; the executor's own chunking cannot split a
        job, so this is also the unit of load balancing.
        """
        if n_items <= 0:
            return 0
        return max(1, min(self.workers, n_items))

    def plan_shards(
        self, n_items: int, *, shard_size: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """Split ``n_items`` into contiguous ``(start, stop)`` shards.

        Default shard size aims at a few shards per worker so the cost
        model can still balance load, without shrinking shards so far
        that per-shard overhead (one snapshot restore, one merged
        summary) dominates.  The partition depends only on ``n_items``
        and ``shard_size`` — never on worker count — so per-item seeds
        derived from global indices keep results shard-layout-proof.
        """
        if n_items <= 0:
            return []
        if shard_size is None:
            shard_size = max(1, -(-n_items // max(1, self.workers * 4)))
        return plan_shards(n_items, shard_size)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<ParallelExecutor workers={self.workers} "
            f"seed={self.master_seed} retries={self.retries} "
            f"warm={len(self._handles)}>"
        )


def plan_shards(n_items: int, shard_size: int) -> List[Tuple[int, int]]:
    """Partition ``range(n_items)`` into contiguous ``(start, stop)`` runs.

    Every shard except possibly the last holds exactly ``shard_size``
    items.  The layout is a pure function of its arguments, so two runs
    that agree on ``n_items`` and ``shard_size`` agree on every shard
    boundary regardless of executor configuration.
    """
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [
        (start, min(start + shard_size, n_items))
        for start in range(0, max(0, n_items), shard_size)
    ]


# -- shared executors ----------------------------------------------------

_INLINE_EXECUTOR: Optional[ParallelExecutor] = None
_WARM_EXECUTORS: Dict[tuple, ParallelExecutor] = {}


def get_inline_executor() -> ParallelExecutor:
    """Process-wide ``workers=1`` executor for serial fallback paths.

    Call sites that accept ``executor=None`` share this instance instead
    of constructing a fresh one per call; it owns no worker processes,
    and callers pass their seed per run via
    ``run_jobs(..., master_seed=...)``.
    """
    global _INLINE_EXECUTOR
    if _INLINE_EXECUTOR is None:
        _INLINE_EXECUTOR = ParallelExecutor(workers=1)
    return _INLINE_EXECUTOR


def warm_executor(workers: Optional[int] = None, **kwargs: Any
                  ) -> ParallelExecutor:
    """Process-wide warm executor shared across campaigns.

    Returns (creating on first use) a cached :class:`ParallelExecutor`
    keyed by ``(workers, start_method)``; its pool stays warm between
    calls and is shut down at interpreter exit.  Per-campaign seeds go
    through ``run_jobs(..., master_seed=...)`` — do not pass
    ``master_seed`` here.
    """
    if "master_seed" in kwargs:
        raise ExecutionError(
            "warm_executor() is shared across campaigns; pass master_seed "
            "per run (run_jobs(jobs, master_seed=...)) instead"
        )
    resolved = workers if workers is not None else (os.cpu_count() or 1)
    key = (resolved, kwargs.get("start_method"))
    executor = _WARM_EXECUTORS.get(key)
    if executor is None:
        executor = ParallelExecutor(resolved, **kwargs)
        _WARM_EXECUTORS[key] = executor
    return executor


@atexit.register
def _shutdown_shared_executors() -> None:  # pragma: no cover - exit hook
    for executor in list(_WARM_EXECUTORS.values()):
        executor.close()
    _WARM_EXECUTORS.clear()
