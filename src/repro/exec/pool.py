"""A deterministic multi-process executor for independent simulation runs.

:class:`ParallelExecutor` fans a batch of :class:`~repro.exec.jobs.SimJob`
specs out over a ``concurrent.futures.ProcessPoolExecutor`` (preferring
the cheap ``fork`` start method where the platform offers it) and returns
results **in job order**, no matter which workers finished first.

Guarantees:

* **Determinism** — each job's RNG seed is derived from the master seed
  and the job id only, so results are byte-identical to serial execution
  for any worker count, chunking, or completion order.
* **Chunked dispatch** — jobs are grouped into chunks to amortise pickle
  and IPC cost; chunk composition never affects results.
* **Bounded failure handling** — a job that raises is retried up to
  ``retries`` times (the retry replays the same seed); a chunk that
  exceeds its timeout or loses its worker poisons only that chunk, the
  pool is rebuilt and the chunk's jobs count as failed for the round.
* **Merged observability** — each job runs against a fresh
  :class:`~repro.obs.metrics.MetricsRegistry`; per-job digests are folded
  into one :mod:`repro.obs` batch report.

With ``workers=1`` the batch runs inline through the *same* chunk-runner
code path — that is the reference serial execution all parallel runs
must match.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, TimeoutError
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..obs.metrics import MetricsRegistry
from .jobs import BatchReport, JobContext, JobResult, SimJob, derive_job_seed

#: (index, job, seed, attempt) — what travels to a worker per job
_Payload = Tuple[int, SimJob, int, int]


def _run_chunk(payload: Sequence[_Payload]) -> List[tuple]:
    """Execute a chunk of jobs in this process (worker entry point).

    Per-job exceptions are caught and reported as data so one bad job
    neither loses its chunk-mates' completed work nor kills the worker.
    """
    out = []
    pid = os.getpid()
    for index, job, seed, attempt in payload:
        registry = MetricsRegistry()
        ctx = JobContext(job_id=job.job_id, seed=seed, attempt=attempt,
                         metrics=registry)
        start = perf_counter()
        try:
            value = job.run(ctx)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            out.append((index, False, repr(exc), None, pid,
                        perf_counter() - start))
        else:
            digest: Optional[Dict[str, Any]] = None
            if len(registry):
                digest = {"metrics": registry.snapshot()}
            out.append((index, True, value, digest, pid,
                        perf_counter() - start))
    return out


class ParallelExecutor:
    """Runs batches of :class:`SimJob` across a worker-process pool.

    The pool is created lazily and reused across :meth:`run_jobs` calls
    (a GA evaluating one population per generation pays the fork cost
    once, not per generation).  Use as a context manager or call
    :meth:`close` when done.

    Args:
        workers: worker-process count; ``1`` executes inline (the
            serial reference path).  Defaults to the machine's CPU count.
        master_seed: root of all per-job seed derivation.
        retries: extra attempts granted to a failed job (same seed).
        job_timeout: wall-clock budget **per job** in seconds; a chunk's
            deadline is ``job_timeout * len(chunk) + grace``.  ``None``
            waits forever.
        chunk_size: jobs per worker submission; defaults to spreading
            the batch ~4 chunks per worker.
        start_method: multiprocessing start method; defaults to ``fork``
            where available (cheap, inherits the parent's modules).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        master_seed: int = 0,
        retries: int = 1,
        job_timeout: Optional[float] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ExecutionError(f"retries must be >= 0, got {retries}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.master_seed = master_seed
        self.retries = retries
        self.job_timeout = job_timeout
        self.chunk_size = chunk_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a pool whose workers may be hung or dead."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- execution -------------------------------------------------------

    def run(self, jobs: Sequence[SimJob]) -> List[Any]:
        """Execute ``jobs``; return their values in job order.

        Raises :class:`ExecutionError` if any job still fails after its
        retry budget.  Use :meth:`run_jobs` for non-strict execution.
        """
        report = self.run_jobs(jobs)
        if report.failed:
            bad = [r for r in report.results if not r.ok]
            detail = "; ".join(f"{r.job_id}: {r.error}" for r in bad[:5])
            raise ExecutionError(
                f"{report.failed}/{len(report.results)} jobs failed "
                f"after {self.retries} retries ({detail})"
            )
        return report.values

    def run_jobs(self, jobs: Sequence[SimJob]) -> BatchReport:
        """Execute ``jobs``; return a :class:`BatchReport` in job order.

        Failed jobs (after retries) appear as :class:`JobResult` entries
        with ``error`` set — the caller decides whether that is fatal.
        """
        jobs = list(jobs)
        seen: Dict[str, int] = {}
        for index, job in enumerate(jobs):
            if job.job_id in seen:
                raise ExecutionError(
                    f"duplicate job_id {job.job_id!r} (indices "
                    f"{seen[job.job_id]} and {index}): seed derivation "
                    f"requires unique ids"
                )
            seen[job.job_id] = index
        report = BatchReport()
        if not jobs:
            return report
        pending: List[_Payload] = [
            (i, job, derive_job_seed(self.master_seed, job.job_id), 0)
            for i, job in enumerate(jobs)
        ]
        results: Dict[int, JobResult] = {}
        for round_no in range(self.retries + 1):
            failed = self._run_round(pending, results)
            if not failed or round_no == self.retries:
                break
            report.retried += len(failed)
            pending = [(i, job, seed, attempt + 1)
                       for (i, job, seed, attempt) in failed]
        report.results = [results[i] for i in range(len(jobs))]
        report.failed = sum(1 for r in report.results if not r.ok)
        return report

    def _run_round(
        self, payloads: List[_Payload], results: Dict[int, JobResult]
    ) -> List[_Payload]:
        """Run one attempt round; record outcomes; return failed payloads."""
        by_index = {p[0]: p for p in payloads}
        failed: List[_Payload] = []

        def record(raw: tuple) -> None:
            index, ok, value, digest, pid, elapsed = raw
            _, job, seed, attempt = by_index[index]
            result = JobResult(
                index=index, job_id=job.job_id, seed=seed,
                attempts=attempt + 1, worker_pid=pid, elapsed=elapsed,
            )
            if ok:
                result.value = value
                result.digest = digest
            else:
                result.error = value
                failed.append(by_index[index])
            results[index] = result

        if self.workers == 1:
            for raw in _run_chunk(payloads):
                record(raw)
            return failed

        chunks = self._chunk(payloads)
        pool = self._get_pool()
        futures = [(pool.submit(_run_chunk, chunk), chunk) for chunk in chunks]
        for future, chunk in futures:
            timeout = None
            if self.job_timeout is not None:
                timeout = self.job_timeout * len(chunk) + 1.0
            try:
                raws = future.result(timeout=timeout)
            except (TimeoutError, BrokenExecutor) as exc:
                # A hung or dead worker poisons its pool slot: rebuild the
                # pool and count the whole chunk as failed for this round.
                self._discard_pool()
                for payload in chunk:
                    record((payload[0], False, repr(exc), None, 0, 0.0))
                continue
            for raw in raws:
                record(raw)
        return failed

    def _chunk(self, payloads: List[_Payload]) -> List[List[_Payload]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(payloads) // (self.workers * 4)))
        return [payloads[i:i + size] for i in range(0, len(payloads), size)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<ParallelExecutor workers={self.workers} "
            f"seed={self.master_seed} retries={self.retries}>"
        )
