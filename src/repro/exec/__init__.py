"""Deterministic parallel experiment execution.

The paper's workloads are embarrassingly parallel at the experiment
level — DSE candidate evaluations (Section 2.3), fleet-campaign
replications (Section 3.4) and XiL scenario batteries (Section 2.4) are
all independent simulation runs.  This package fans them out across
worker processes without ever changing results:

* :class:`SimJob` — a picklable spec that builds a fresh simulator in a
  worker and returns a picklable result;
* :class:`ParallelExecutor` — a ``fork``-aware process pool with chunked
  dispatch, per-job seed derivation, per-job timeout + bounded retry,
  and merged :mod:`repro.obs` batch reports;
* :func:`derive_job_seed` — the seed contract that makes parallel runs
  byte-identical to serial ones.
"""

from .jobs import (
    BatchReport,
    FunctionJob,
    JobContext,
    JobResult,
    SimJob,
    derive_job_seed,
)
from .pool import ParallelExecutor

__all__ = [
    "BatchReport",
    "FunctionJob",
    "JobContext",
    "JobResult",
    "ParallelExecutor",
    "SimJob",
    "derive_job_seed",
]
