"""Deterministic parallel experiment execution.

The paper's workloads are embarrassingly parallel at the experiment
level — DSE candidate evaluations (Section 2.3), fleet-campaign
replications (Section 3.4) and XiL scenario batteries (Section 2.4) are
all independent simulation runs.  This package fans them out across
worker processes without ever changing results:

* :class:`SimJob` — a picklable spec that builds a fresh simulator in a
  worker and returns a picklable result (optionally carrying a
  ``cost_hint`` to prime the chunk cost model);
* :class:`ParallelExecutor` — a persistent warm worker pool with
  cost-model chunking, overlapped dispatch/collection, per-job seed
  derivation, per-chunk deadlines with surgical single-worker rebuild,
  bounded retry, and merged :mod:`repro.obs` batch reports;
* :func:`warm_executor` / :func:`get_inline_executor` — process-wide
  shared executors so call sites reuse one warm pool across campaigns
  instead of paying spawn/import per call;
* :func:`derive_job_seed` — the seed contract that makes parallel runs
  byte-identical to serial ones;
* :mod:`repro.exec.recovery` — durable checkpoint/resume of sharded
  campaigns (:class:`CheckpointSpec`, :func:`resume_campaign`) and the
  seeded executor chaos harness (:class:`ExecChaos`) that proves
  recovery under worker kills and injected crashes.
"""

from .jobs import (
    BatchReport,
    FunctionJob,
    JobContext,
    JobResult,
    SimJob,
    derive_item_seed,
    derive_job_seed,
)
from .pool import (
    ParallelExecutor,
    PoolSupervisor,
    get_inline_executor,
    plan_shards,
    warm_executor,
)
from .recovery import (
    CheckpointCrash,
    CheckpointSpec,
    CheckpointStore,
    ExecChaos,
    FaultPoints,
    load_manifest,
    resume_campaign,
    run_jobs_checkpointed,
)

__all__ = [
    "BatchReport",
    "CheckpointCrash",
    "CheckpointSpec",
    "CheckpointStore",
    "ExecChaos",
    "FaultPoints",
    "FunctionJob",
    "JobContext",
    "JobResult",
    "ParallelExecutor",
    "PoolSupervisor",
    "SimJob",
    "derive_item_seed",
    "derive_job_seed",
    "get_inline_executor",
    "load_manifest",
    "plan_shards",
    "resume_campaign",
    "run_jobs_checkpointed",
    "warm_executor",
]
