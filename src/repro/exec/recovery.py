"""Crash recovery for the execution substrate: checkpoints and chaos.

The campaign harness itself is a single point of failure — one worker
OOM or a host preemption discards hours of sharded simulation.  This
module makes sharded campaigns **preemption-tolerant**:

* :class:`CheckpointSpec` / :class:`CheckpointStore` — durable,
  schema-versioned, integrity-hashed persistence of completed shard
  summaries.  Every record is written atomically (write-to-temp +
  fsync + rename), so a crash at any instant leaves either the old
  state or the new state on disk, never a torn record.
* :func:`run_jobs_checkpointed` — a drop-in wrapper around
  :meth:`~repro.exec.pool.ParallelExecutor.run_jobs` that loads
  completed jobs from the store, runs only the missing ones, and
  persists fresh completions **as they finish** (via the executor's
  ``on_result`` hook), so a crash mid-batch loses only the unflushed
  tail.
* :func:`resume_campaign` — restarts an interrupted fleet campaign,
  fault campaign or campaign sweep from its checkpoint directory alone.
  Because every shard digest is a pure function of
  ``(plan, master_seed, index)`` and the reducers are exact mergeable
  summaries, a resumed campaign's digest is **byte-identical** to an
  uninterrupted run's — including mid-wave resume, halt decisions and
  rollback, which are all recomputed deterministically from the spec.
* :class:`ExecChaos` / :class:`FaultPoints` — a seeded chaos harness
  for the executor itself (SIGKILL a random busy worker every N
  chunks, inject pipe EOFs) and crash hooks inside the checkpoint
  write path, used by the soak test and ``benchmarks/bench_recovery.py``
  to prove the recovery guarantees under fire.

Determinism note: checkpoint file names and digests are pure functions
of the plan and shard keys — no wall-clock, pid or hostname ever leaks
into the on-disk format, so two runs of the same plan produce
interchangeable stores.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..sim.rng import RngStreams
from .jobs import BatchReport, JobResult, SimJob, derive_job_seed

#: on-disk layout version; bump on any incompatible format change
CHECKPOINT_SCHEMA = 1

#: manifest file name inside a checkpoint directory
MANIFEST_NAME = "manifest.json"

#: suffix of a finished (renamed-into-place) shard record
RECORD_SUFFIX = ".ckpt"

#: characters allowed verbatim in a record file name
_SAFE_KEY = re.compile(r"[^A-Za-z0-9._-]")


class CheckpointCrash(RuntimeError):
    """Raised by an armed :class:`FaultPoints` hook to simulate a crash.

    Deliberately *not* an :class:`ExecutionError`: recovery tests must
    be able to catch exactly the injected crash without masking real
    execution failures.
    """


class FaultPoints:
    """Named crash hooks threaded through the checkpoint write path.

    Tests and the chaos benchmark arm a point —
    ``fp.arm("checkpoint.record_written", after=3)`` — and the third
    time execution passes that point, :class:`CheckpointCrash` is
    raised, simulating a harness crash at a byte-exact stage of the
    atomic-write protocol.  Unarmed points only count hits.

    Points the store exposes, in write order:

    * ``checkpoint.header_written`` — header line written to the temp
      file, payload not yet (a torn write if the rename never happens);
    * ``checkpoint.tmp_written`` — temp file complete and fsynced, not
      yet renamed (the record must be invisible to a resume);
    * ``checkpoint.record_written`` — rename done, record durable;
    * ``checkpoint.flush`` — a flush batch completed.
    """

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self._armed: Dict[str, int] = {}

    def arm(self, point: str, *, after: int = 0) -> "FaultPoints":
        """Crash on the ``after + 1``-th hit of ``point`` (0 = first)."""
        if after < 0:
            raise ExecutionError(f"after must be >= 0, got {after}")
        self._armed[point] = after
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def hit(self, point: str) -> None:
        """Record one pass through ``point``; crash if armed and due."""
        count = self.hits.get(point, 0)
        self.hits[point] = count + 1
        due = self._armed.get(point)
        if due is not None and count >= due:
            del self._armed[point]
            raise CheckpointCrash(
                f"injected crash at fault point {point!r} (hit #{count + 1})"
            )


@dataclass(frozen=True)
class CheckpointSpec:
    """Where and how often a campaign persists completed shards.

    Args:
        dir: checkpoint directory (created on first use; one campaign
            per directory — the manifest pins the plan).
        every_n_shards: flush granularity — completed shard records are
            buffered and written in batches of this size (the final
            flush writes any remainder).  ``1`` persists every shard
            immediately; larger values trade crash-window size for
            fewer fsyncs.
    """

    dir: str
    every_n_shards: int = 1

    def __post_init__(self) -> None:
        if not self.dir:
            raise ExecutionError("CheckpointSpec needs a directory")
        if self.every_n_shards < 1:
            raise ExecutionError(
                f"every_n_shards must be >= 1, got {self.every_n_shards}"
            )


def plan_key(kind: str, plan: Any) -> str:
    """Content hash pinning a checkpoint directory to one exact plan.

    A resume against a directory whose manifest records a different
    ``plan_key`` fails loudly instead of silently merging shards from
    two different campaigns.
    """
    blob = pickle.dumps((kind, plan), protocol=4)
    return hashlib.sha256(blob).hexdigest()


def _record_name(key: str) -> str:
    """Deterministic, filesystem-safe record file name for ``key``.

    The sanitized key keeps records human-greppable; the appended hash
    of the raw key keeps distinct keys from colliding after
    sanitization.  No wall-clock, counter or pid enters the name.
    """
    safe = _SAFE_KEY.sub("_", key)[:80]
    tag = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
    return f"{safe}.{tag}{RECORD_SUFFIX}"


def load_manifest(directory: str) -> Dict[str, Any]:
    """Read and validate a checkpoint directory's manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise ExecutionError(
            f"no checkpoint manifest in {directory!r} — nothing to resume"
        ) from None
    except (OSError, ValueError) as exc:
        raise ExecutionError(
            f"unreadable checkpoint manifest {path!r}: {exc!r}"
        ) from exc
    if manifest.get("schema") != CHECKPOINT_SCHEMA:
        raise ExecutionError(
            f"checkpoint schema {manifest.get('schema')!r} in {path!r} not "
            f"supported (expected {CHECKPOINT_SCHEMA})"
        )
    for field in ("kind", "plan_key", "plan_hex"):
        if field not in manifest:
            raise ExecutionError(
                f"checkpoint manifest {path!r} is missing {field!r}"
            )
    return manifest


class CheckpointStore:
    """Durable map of shard key → completed shard summary.

    On-disk layout (one directory per campaign):

    * ``manifest.json`` — schema version, campaign ``kind``, the
      ``plan_key`` content hash, the pickled plan itself (hex, so a
      resume can rebuild the campaign from the directory alone) and
      free-form ``meta``.
    * ``<key>.<hash12>.ckpt`` — one record per completed shard: a
      JSON header line (schema, raw key, plan_key, payload sha256)
      followed by the pickled payload.  Records are written to
      ``*.tmp`` first, fsynced, then renamed into place; loaders skip
      ``*.tmp`` files, verify the header and the payload hash, and
      silently discard anything torn or foreign — a discarded shard
      is merely recomputed.
    """

    def __init__(
        self,
        spec: CheckpointSpec,
        *,
        kind: str,
        plan: Any,
        meta: Optional[Dict[str, Any]] = None,
        fault_points: Optional[FaultPoints] = None,
    ) -> None:
        self.spec = spec
        self.kind = kind
        self.plan = plan
        self.plan_key = plan_key(kind, plan)
        self.fault_points = fault_points
        #: records buffered since the last flush (key → payload)
        self._buffer: List[Tuple[str, Any]] = []
        #: load/write accounting for reports and benchmarks
        self.loaded = 0
        self.written = 0
        self.discarded = 0
        os.makedirs(spec.dir, exist_ok=True)
        self._init_manifest(meta or {})

    # -- manifest --------------------------------------------------------

    def _init_manifest(self, meta: Dict[str, Any]) -> None:
        path = os.path.join(self.spec.dir, MANIFEST_NAME)
        if os.path.exists(path):
            manifest = load_manifest(self.spec.dir)
            if manifest["plan_key"] != self.plan_key:
                raise ExecutionError(
                    f"checkpoint dir {self.spec.dir!r} belongs to a "
                    f"different campaign (manifest plan_key "
                    f"{manifest['plan_key'][:12]}…, this plan "
                    f"{self.plan_key[:12]}…); refusing to mix shards"
                )
            return
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "kind": self.kind,
            "plan_key": self.plan_key,
            "plan_hex": pickle.dumps(self.plan, protocol=4).hex(),
            "meta": meta,
        }
        blob = json.dumps(manifest, sort_keys=True).encode("utf-8")
        self._atomic_write(path, blob)

    # -- the atomic-write protocol ---------------------------------------

    def _atomic_write(self, path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        """Make the rename itself durable (directory entry fsync)."""
        try:
            fd = os.open(self.spec.dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir-fsync
            pass
        finally:
            os.close(fd)

    def _write_record(self, key: str, payload: Any) -> None:
        fp = self.fault_points
        path = os.path.join(self.spec.dir, _record_name(key))
        blob = pickle.dumps(payload, protocol=4)
        header = json.dumps({
            "schema": CHECKPOINT_SCHEMA,
            "key": key,
            "plan_key": self.plan_key,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }, sort_keys=True).encode("utf-8")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header + b"\n")
            if fp is not None:
                fp.hit("checkpoint.header_written")
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        if fp is not None:
            fp.hit("checkpoint.tmp_written")
        os.replace(tmp, path)
        self.written += 1
        if fp is not None:
            fp.hit("checkpoint.record_written")

    # -- public API ------------------------------------------------------

    def add(self, key: str, payload: Any) -> None:
        """Buffer one completed shard; auto-flush at the batch size."""
        self._buffer.append((key, payload))
        if len(self._buffer) >= self.spec.every_n_shards:
            self.flush()

    def flush(self) -> None:
        """Persist every buffered record (atomic per record)."""
        if not self._buffer:
            return
        # a crash mid-loop loses only the unwritten tail — written
        # records are already durable, a resume recomputes the rest
        buffered, self._buffer = self._buffer, []
        for key, payload in buffered:
            self._write_record(key, payload)
        self._fsync_dir()
        if self.fault_points is not None:
            self.fault_points.hit("checkpoint.flush")

    def load(self) -> Dict[str, Any]:
        """Read every valid record; torn/foreign records are discarded."""
        records: Dict[str, Any] = {}
        try:
            names = sorted(os.listdir(self.spec.dir))
        except FileNotFoundError:
            return records
        for name in names:
            if not name.endswith(RECORD_SUFFIX):
                continue  # manifest, *.tmp leftovers, foreign files
            path = os.path.join(self.spec.dir, name)
            try:
                with open(path, "rb") as fh:
                    header_line = fh.readline()
                    blob = fh.read()
                header = json.loads(header_line.decode("utf-8"))
                if (header.get("schema") != CHECKPOINT_SCHEMA
                        or header.get("plan_key") != self.plan_key
                        or header.get("sha256")
                        != hashlib.sha256(blob).hexdigest()):
                    self.discarded += 1
                    continue
                records[header["key"]] = pickle.loads(blob)
            except (OSError, ValueError, KeyError, pickle.PickleError,
                    EOFError):
                self.discarded += 1  # torn or corrupt — recompute it
                continue
        self.loaded = len(records)
        return records


# -- checkpointed batch execution ----------------------------------------


def run_jobs_checkpointed(
    jobs: Sequence[SimJob],
    *,
    executor,
    master_seed: int,
    context: Any = None,
    store: Optional[CheckpointStore] = None,
) -> BatchReport:
    """:meth:`run_jobs` with durable skip-and-persist semantics.

    Jobs whose ``job_id`` already has a valid record in ``store`` are
    **not re-executed** — their stored ``(value, digest)`` is replayed
    into the report (marked ``attempts=0``).  The remaining jobs run
    normally, and each successful result is handed to the store as it
    completes, so even a crash mid-batch preserves every flushed shard.
    Without a store this is exactly ``executor.run_jobs``.

    Correctness rests on the executor's seed contract: a job's seed
    derives from ``(master_seed, job_id)`` alone, so a stored value is
    bit-for-bit what re-execution would produce — skipping is
    unobservable in the merged summary.
    """
    jobs = list(jobs)
    if store is None:
        return executor.run_jobs(jobs, master_seed=master_seed,
                                 context=context)
    records = store.load()
    fresh = [job for job in jobs if job.job_id not in records]
    fresh_report = BatchReport()
    if fresh:
        fresh_report = executor.run_jobs(
            fresh, master_seed=master_seed, context=context,
            on_result=lambda r: store.add(r.job_id, (r.value, r.digest)),
        )
    store.flush()
    by_id = {r.job_id: r for r in fresh_report.results}
    results: List[JobResult] = []
    for index, job in enumerate(jobs):
        if job.job_id in records:
            value, digest = records[job.job_id]
            results.append(JobResult(
                index=index, job_id=job.job_id,
                seed=derive_job_seed(master_seed, job.job_id),
                attempts=0, value=value, digest=digest,
            ))
        else:
            result = by_id[job.job_id]
            result.index = index
            results.append(result)
    report = BatchReport(results=results, retried=fresh_report.retried)
    report.failed = sum(1 for r in results if not r.ok)
    return report


# -- resume --------------------------------------------------------------


def resume_campaign(
    directory: str,
    *,
    executor: Any = None,
    fork: bool = True,
    fault_points: Optional[FaultPoints] = None,
) -> Any:
    """Resume an interrupted campaign from its checkpoint directory.

    Reads the manifest, rebuilds the campaign spec pinned there, and
    re-runs the campaign **against the same store**: shards already on
    disk are loaded instead of simulated, missing ones (including the
    mid-wave tail that was in flight at the crash) are recomputed with
    their original seeds, and every wave digest, halt decision and
    rollback is re-derived deterministically — so the resumed campaign
    digest is byte-identical to an uninterrupted run's.

    Dispatches on the manifest's ``kind``: ``fleet_campaign``
    (:class:`repro.fleet.service.FleetCampaign`), ``fault_campaign``
    (:func:`repro.faults.campaign.run_fault_campaign`) and
    ``campaign_sweep`` (:func:`repro.core.campaign.sweep_campaigns`).
    """
    manifest = load_manifest(directory)
    kind = manifest["kind"]
    plan = pickle.loads(bytes.fromhex(manifest["plan_hex"]))
    meta = manifest.get("meta") or {}
    every_n = int(meta.get("every_n_shards", 1))
    checkpoint = CheckpointSpec(dir=directory, every_n_shards=every_n)
    if kind == "fleet_campaign":
        # resume re-enters the subsystem that wrote the checkpoint
        from ..fleet.service import FleetCampaign  # repro: allow[ARCH603]

        campaign = FleetCampaign(
            plan, executor=executor, fork=fork, checkpoint=checkpoint,
            fault_points=fault_points,
        )
        return campaign.run()
    if kind == "fault_campaign":
        # resume re-enters the subsystem that wrote the checkpoint
        from ..faults.campaign import run_fault_campaign  # repro: allow[ARCH603]

        spec, replications, master_seed = plan
        return run_fault_campaign(
            spec, replications=replications, executor=executor,
            master_seed=master_seed, fork=fork, checkpoint=checkpoint,
            fault_points=fault_points,
        )
    if kind == "campaign_sweep":
        # resume re-enters the subsystem that wrote the checkpoint
        from ..core.campaign import sweep_campaigns  # repro: allow[ARCH603]

        spec, replications, master_seed = plan
        return sweep_campaigns(
            spec, replications=replications, executor=executor,
            master_seed=master_seed, fork=fork, checkpoint=checkpoint,
            fault_points=fault_points,
        )
    raise ExecutionError(
        f"cannot resume checkpoint of unknown kind {kind!r} "
        f"(directory {directory!r})"
    )


# -- executor-level chaos ------------------------------------------------


class ExecChaos:
    """Seeded chaos harness for the executor substrate itself.

    Plugged into :class:`~repro.exec.pool.ParallelExecutor` via
    ``chaos=``; after every chunk dispatch the pool calls
    :meth:`on_dispatch`, which — on a deterministic, seeded schedule —
    SIGKILLs a random *busy* worker (``kill_every``) or orders a worker
    to exit without replying, producing a clean pipe EOF
    (``eof_every``).  Both failure shapes exercise the supervision
    paths: death detection, surgical rebuild and idempotent chunk
    re-dispatch.  Victim choice draws from seeded
    :class:`~repro.sim.rng.RngStreams`, so a chaos soak is replayable.

    The harness never touches results — determinism of outcomes *under*
    chaos is exactly what the soak test asserts.
    """

    def __init__(self, seed: int = 0, *, kill_every: int = 0,
                 eof_every: int = 0) -> None:
        if kill_every < 0 or eof_every < 0:
            raise ExecutionError("chaos periods must be >= 0 (0 disables)")
        self.kill_every = kill_every
        self.eof_every = eof_every
        self._rng = RngStreams(seed)
        #: chunks dispatched since the harness was armed
        self.chunks = 0
        self.kills = 0
        self.eofs = 0

    def on_dispatch(self, handle, executor) -> None:
        """Pool hook: maybe harm a worker after this dispatch."""
        self.chunks += 1
        if self.kill_every and self.chunks % self.kill_every == 0:
            victims = [h for h in executor._handles
                       if h.chunk is not None and h.proc.pid]
            victim = (self._rng.choice("exec.chaos.kill", victims)
                      if victims else handle)
            try:
                os.kill(victim.proc.pid, signal.SIGKILL)
                self.kills += 1
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
        if self.eof_every and self.chunks % self.eof_every == 0:
            from .pool import _DIE

            try:
                handle.conn.send_bytes(_DIE)
                self.eofs += 1
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass


__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointCrash",
    "CheckpointSpec",
    "CheckpointStore",
    "ExecChaos",
    "FaultPoints",
    "load_manifest",
    "plan_key",
    "resume_campaign",
    "run_jobs_checkpointed",
]
