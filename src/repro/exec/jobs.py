"""Backward-compatible re-export of the job protocol.

The job abstractions were re-homed to :mod:`repro.jobs` so that lower
layers (``core`` defines campaign jobs, ``dse`` genome batches, …) can
subclass :class:`~repro.jobs.SimJob` without depending on the executor
package — ``exec`` sits *above* them in the layer DAG.  Every name keeps
importing from here so existing call sites and pickles stay valid.
"""

from ..jobs import (  # noqa: F401
    BatchReport,
    FunctionJob,
    JobContext,
    JobResult,
    SimJob,
    derive_item_seed,
    derive_job_seed,
)

__all__ = [
    "BatchReport",
    "FunctionJob",
    "JobContext",
    "JobResult",
    "SimJob",
    "derive_item_seed",
    "derive_job_seed",
]
