"""Interface definitions (the interface DSL of Section 2.2).

Every interface has an **owner** "who controls interface description,
version, etc." — the producer for events and streams, the service
provider for messages.  Requirements (latency, jitter, bandwidth) are
attached here and checked by the verification engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from ..errors import ModelError
from .types import DataType


class InterfaceKind(Enum):
    """The paradigm an interface uses (Figure 3)."""

    EVENT = "event"
    MESSAGE = "message"
    STREAM = "stream"


@dataclass(frozen=True)
class InterfaceRequirements:
    """Non-functional requirements on an interface.

    Attributes:
        max_latency: end-to-end deadline per transfer (s).
        max_jitter: tolerated delivery jitter (s).
        min_bandwidth_bps: required sustained bandwidth (streams).
        period: nominal transfer period (events / streams), used to derive
            offered network load.
    """

    max_latency: Optional[float] = None
    max_jitter: Optional[float] = None
    min_bandwidth_bps: Optional[float] = None
    period: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_latency", "max_jitter", "min_bandwidth_bps", "period"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ModelError(f"requirement {name} must be positive")


@dataclass(frozen=True)
class InterfaceDef:
    """One typed interface between applications.

    Attributes:
        name: unique interface name.
        kind: event / message / stream.
        owner: the application owning the definition (producer for
            event/stream, providing consumer for message).
        data_type: payload type (request type for messages).
        response_type: messages only — the response payload type.
        version: (major, minor).  Clients require an equal major and a
            provider minor >= their own (SOME/IP compatibility rule).
        service_id: wire-level service identifier; assigned by codegen if 0.
        requirements: non-functional attributes.
    """

    name: str
    kind: InterfaceKind
    owner: str
    data_type: DataType
    response_type: Optional[DataType] = None
    version: Tuple[int, int] = (1, 0)
    service_id: int = 0
    requirements: InterfaceRequirements = field(default_factory=InterfaceRequirements)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("interface needs a name")
        if not self.owner:
            raise ModelError(f"interface {self.name!r} needs an owner")
        if self.kind is InterfaceKind.MESSAGE and self.response_type is None:
            raise ModelError(
                f"message interface {self.name!r} needs a response type"
            )
        if self.kind is not InterfaceKind.MESSAGE and self.response_type is not None:
            raise ModelError(
                f"{self.kind.value} interface {self.name!r} cannot have a "
                "response type"
            )
        major, minor = self.version
        if major < 0 or minor < 0:
            raise ModelError(f"interface {self.name!r}: invalid version")
        if self.kind is InterfaceKind.STREAM and (
            self.requirements.period is None
        ):
            raise ModelError(
                f"stream interface {self.name!r} must declare a period"
            )

    @property
    def payload_bytes(self) -> int:
        return self.data_type.byte_size()

    @property
    def response_bytes(self) -> int:
        if self.response_type is None:
            return 0
        return self.response_type.byte_size()

    def offered_bandwidth_bps(self) -> float:
        """Network load this interface generates per consumer, if periodic."""
        if self.requirements.period is None:
            return 0.0
        return self.payload_bytes * 8.0 / self.requirements.period

    def compatible_with(self, required_version: Tuple[int, int]) -> bool:
        """SOME/IP rule: equal major, provider minor >= required minor."""
        major, minor = self.version
        req_major, req_minor = required_version
        return major == req_major and minor >= req_minor
