"""Modeling DSLs: types, interfaces, applications, deployments and the
verification engine (paper Section 2.2 / 2.3)."""

from .applications import AppModel, Asil, RequiredInterface, check_asil_dependencies
from .codegen import (
    MiddlewareConfig,
    SERVICE_ID_BASE,
    derive_qos,
    generate_config,
    generate_stub,
)
from .deployment import Deployment, Placement, VariantSpace
from .interfaces import InterfaceDef, InterfaceKind, InterfaceRequirements
from .signals import (
    SignalCatalog,
    SignalDef,
    legacy_body_catalog,
    migrate_catalog,
)
from .system import SystemModel
from .types import ArrayType, DataType, Primitive, StructType, TypeRegistry, standard_types
from .verification import (
    BUS_UTILIZATION_LIMIT,
    Severity,
    VerificationResult,
    VerifyCache,
    Violation,
    estimate_latency,
    verify,
    verify_variant_space,
)

__all__ = [
    "AppModel",
    "ArrayType",
    "Asil",
    "BUS_UTILIZATION_LIMIT",
    "DataType",
    "Deployment",
    "InterfaceDef",
    "InterfaceKind",
    "InterfaceRequirements",
    "MiddlewareConfig",
    "Placement",
    "Primitive",
    "RequiredInterface",
    "SERVICE_ID_BASE",
    "Severity",
    "SignalCatalog",
    "SignalDef",
    "StructType",
    "SystemModel",
    "TypeRegistry",
    "VariantSpace",
    "VerificationResult",
    "VerifyCache",
    "Violation",
    "check_asil_dependencies",
    "derive_qos",
    "estimate_latency",
    "generate_config",
    "generate_stub",
    "legacy_body_catalog",
    "migrate_catalog",
    "standard_types",
    "verify",
    "verify_variant_space",
]
