"""The verification engine (Section 2.2).

"An attached verification engine should ensure that the interconnections
and deployment mappings fulfill the defined requirements."

:func:`verify` checks one concrete deployment of a :class:`SystemModel`
against every rule the paper names:

* resource feasibility — memory, flash, CPU schedulability per core;
* OS-class rules — deterministic apps only on real-time OSs;
* jitter declarations — deterministic tasks sharing a preemptive core
  must bound their tolerated start jitter;
* hardware attribute rules — GPU, MMU for mixed-criticality co-location;
* interface wiring — providers exist, versions compatible, routes exist;
* bandwidth feasibility per bus segment;
* latency estimates against interface requirements;
* deterministic traffic only over isolation-capable segments
  (CAN priority / FlexRay static / TSN);
* ASIL dependency ordering (via the system model's structural checks).

:func:`verify_variant_space` repeats this for **every** deployment in a
:class:`VariantSpace` — the paper's requirement that "every possible
mapping is functional, safe, and secure".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..errors import VerificationError
from ..middleware.wire import HEADER_BYTES, segment_payload_for, segments_needed
from ..network.can import can_frame_bits
from ..network.ethernet import ethernet_wire_bytes
from ..network.gateway import GATEWAY_LATENCY
from ..osal.analysis import is_schedulable_fp
from ..osal.task import Criticality, TaskSpec
from .deployment import Deployment, VariantSpace
from .system import SystemModel


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One rule violation found by the engine."""

    rule: str
    subject: str
    message: str
    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.rule}({self.subject}): {self.message}"


@dataclass
class VerificationResult:
    """All findings for one deployment."""

    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(v.severity is Severity.ERROR for v in self.violations)

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.WARNING]

    def add(
        self,
        rule: str,
        subject: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.violations.append(Violation(rule, subject, message, severity))

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise VerificationError(
                "; ".join(str(v) for v in self.errors)
            )


#: Maximum planned utilization of any bus segment (headroom rule of thumb).
BUS_UTILIZATION_LIMIT = 0.8


def estimate_latency(
    model: SystemModel, src_ecu: str, dst_ecu: str, payload_bytes: int
) -> float:
    """Static end-to-end latency estimate for one message (unloaded net).

    Sum over route segments of per-frame wire time x segment count, plus
    gateway store-and-forward latency per hop.  This is the quantity the
    verification engine compares against interface deadlines; contention
    is the simulator's job.
    """
    if src_ecu == dst_ecu:
        return 0.0
    buses = model.topology.route_buses(src_ecu, dst_ecu)
    total_bytes = payload_bytes + HEADER_BYTES
    latency = 0.0
    for i, bus in enumerate(buses):
        seg_payload = segment_payload_for(bus.technology)
        n_segments = segments_needed(total_bytes, seg_payload)
        if bus.technology == "can":
            frame_time = can_frame_bits(8) / bus.bitrate_bps
        elif bus.technology == "ethernet":
            frame_bytes = ethernet_wire_bytes(min(total_bytes, seg_payload))
            frame_time = frame_bytes * 8.0 / bus.bitrate_bps
        else:  # flexray: half a cycle average wait + slot time, approximated
            frame_time = (min(total_bytes, seg_payload) + 8) * 8.0 / bus.bitrate_bps
        latency += n_segments * frame_time
        if i > 0:
            latency += GATEWAY_LATENCY
    return latency


class CommPair(NamedTuple):
    """One producer/consumer edge with its model-derived constants."""

    producer: str
    consumer: str
    interface: object
    payload_bytes: int
    bandwidth_bps: float
    det_producer: bool


class VerifyCache:
    """Memoised deployment-independent facts for repeated :func:`verify`.

    Design space exploration verifies thousands of deployments against
    ONE model: structural violations, redundancy capability counts,
    communication pairs (with payload sizes and offered bandwidth), bus
    routes and per-(src, dst, payload) latency estimates never change
    between genomes.  A cache computes each once and is picklable, so a
    warm cache ships to executor workers along with its problem.
    """

    def __init__(self, model: SystemModel) -> None:
        self.model = model
        self._structural: Optional[List[str]] = None
        self._redundancy: Optional[List[Violation]] = None
        self._pairs: Optional[Tuple[CommPair, ...]] = None
        #: (src, dst) -> bus tuple, or None when no route exists
        self._routes: Dict[Tuple[str, str], Optional[tuple]] = {}
        self._latency: Dict[Tuple[str, str, int], float] = {}

    def structural_violations(self) -> List[str]:
        if self._structural is None:
            self._structural = list(self.model.structural_violations())
        return self._structural

    def communication_pairs(self) -> Tuple[CommPair, ...]:
        """Producer/consumer edges with per-interface constants resolved."""
        if self._pairs is None:
            self._pairs = tuple(
                CommPair(
                    producer,
                    consumer,
                    interface,
                    interface.payload_bytes,
                    interface.offered_bandwidth_bps(),
                    self.model.app(producer).is_deterministic,
                )
                for producer, consumer, interface
                in self.model.communication_pairs()
            )
        return self._pairs

    def redundancy_violations(self) -> List[Violation]:
        """The redundancy rule reads only the model, never the placement."""
        if self._redundancy is None:
            scratch = VerificationResult()
            _check_redundancy(self.model, Deployment(), scratch)
            self._redundancy = scratch.violations
        return self._redundancy

    def route_buses(self, src: str, dst: str) -> Optional[tuple]:
        """Route between ECUs, or ``None`` when no path exists."""
        key = (src, dst)
        if key not in self._routes:
            try:
                self._routes[key] = tuple(
                    self.model.topology.route_buses(src, dst)
                )
            except Exception:
                self._routes[key] = None
        return self._routes[key]

    def estimate_latency(self, src: str, dst: str, payload_bytes: int) -> float:
        key = (src, dst, payload_bytes)
        cached = self._latency.get(key)
        if cached is None:
            cached = estimate_latency(self.model, src, dst, payload_bytes)
            self._latency[key] = cached
        return cached

    def stats(self) -> Dict[str, int]:
        return {
            "routes": len(self._routes),
            "latencies": len(self._latency),
            "structural": 0 if self._structural is None else 1,
            "redundancy": 0 if self._redundancy is None else 1,
        }


def _check_resources(
    model: SystemModel, deployment: Deployment, result: VerificationResult
) -> None:
    for ecu_name in deployment.used_ecus():
        try:
            spec = model.topology.ecu(ecu_name)
        except Exception:
            result.add("placement", ecu_name, "unknown ECU in deployment")
            continue
        apps = [model.app(a) for a in deployment.apps_on(ecu_name)]
        memory = sum(a.memory_kib for a in apps)
        if memory > spec.memory_kib:
            result.add(
                "memory",
                ecu_name,
                f"apps need {memory:g} KiB, ECU has {spec.memory_kib:g}",
            )
        flash = sum(a.image_kib for a in apps)
        if flash > spec.flash_kib:
            result.add(
                "flash",
                ecu_name,
                f"images need {flash:g} KiB, ECU has {spec.flash_kib:g}",
            )
        for app in apps:
            if app.needs_gpu and not spec.has_gpu:
                result.add("gpu", app.name, f"needs GPU, {ecu_name} has none")
        # per-core schedulability of deterministic tasks
        for core in range(spec.cores):
            core_apps = [
                model.app(a) for a in deployment.apps_on_core(ecu_name, core)
            ]
            det_tasks: List[TaskSpec] = [
                t
                for a in core_apps
                for t in a.tasks
                if t.criticality is Criticality.DETERMINISTIC
            ]
            if det_tasks and not is_schedulable_fp(det_tasks, spec.speed_factor):
                result.add(
                    "schedulability",
                    f"{ecu_name}.core{core}",
                    f"deterministic set of {len(det_tasks)} tasks not "
                    "schedulable",
                )


def _check_os_rules(
    model: SystemModel, deployment: Deployment, result: VerificationResult
) -> None:
    for ecu_name in deployment.used_ecus():
        try:
            spec = model.topology.ecu(ecu_name)
        except Exception:
            continue
        apps = [model.app(a) for a in deployment.apps_on(ecu_name)]
        det_apps = [a for a in apps if a.has_deterministic_tasks]
        nda_apps = [a for a in apps if not a.has_deterministic_tasks and a.tasks]
        if det_apps and not spec.os_class.supports_deterministic:
            result.add(
                "os_class",
                ecu_name,
                f"deterministic apps {[a.name for a in det_apps]} on "
                f"non-real-time OS {spec.os_class.value}",
            )
        if det_apps and nda_apps and not spec.has_mmu:
            result.add(
                "mmu",
                ecu_name,
                "mixed-criticality co-location requires an MMU for memory "
                "freedom of interference",
            )
        for app in apps:
            if app.needs_mmu_isolation and not spec.has_mmu:
                result.add(
                    "mmu", app.name, f"requires MMU isolation, {ecu_name} has none"
                )


def _check_determinism(
    model: SystemModel, deployment: Deployment, result: VerificationResult
) -> None:
    """Deterministic tasks sharing a preemptive core need jitter bounds.

    On an OS class that preempts (anything but bare metal), a
    deterministic task co-located with other tasks can see its start
    delayed by whoever holds the core.  That is fine when the task
    declares how much jitter it tolerates (the runtime monitor enforces
    the bound) — but a task with the default unbounded
    ``jitter_tolerance`` silently absorbs the interference, so the
    engine flags it as a warning.
    """
    for ecu_name in deployment.used_ecus():
        try:
            spec = model.topology.ecu(ecu_name)
        except Exception:
            continue
        if not spec.os_class.preemption_jitter:
            continue
        for core in range(spec.cores):
            core_apps = [
                model.app(a) for a in deployment.apps_on_core(ecu_name, core)
            ]
            core_tasks = [t for a in core_apps for t in a.tasks]
            if len(core_tasks) < 2:
                continue  # a lone task cannot be preempted by a peer
            for app in core_apps:
                for task in app.tasks:
                    if task.criticality is not Criticality.DETERMINISTIC:
                        continue
                    if task.jitter_tolerance != float("inf"):
                        continue
                    result.add(
                        "jitter",
                        f"{app.name}.{task.name}",
                        f"deterministic task shares {ecu_name}.core{core} "
                        f"({len(core_tasks)} tasks) under preemptive "
                        f"{spec.os_class.value} without a declared "
                        "jitter_tolerance bound",
                        severity=Severity.WARNING,
                    )


def _check_communication(
    model: SystemModel,
    deployment: Deployment,
    result: VerificationResult,
    cache: Optional[VerifyCache] = None,
) -> None:
    bus_load: Dict[str, float] = {}
    if cache is not None:
        pairs = cache.communication_pairs()
    else:
        pairs = tuple(
            CommPair(
                producer,
                consumer,
                interface,
                interface.payload_bytes,
                interface.offered_bandwidth_bps(),
                model.app(producer).is_deterministic,
            )
            for producer, consumer, interface in model.communication_pairs()
        )
    for producer, consumer, interface, payload, bw, det_producer in pairs:
        if not deployment.is_placed(producer) or not deployment.is_placed(consumer):
            result.add(
                "placement",
                interface.name,
                f"{producer} or {consumer} not placed",
            )
            continue
        src = deployment.ecu_of(producer)
        dst = deployment.ecu_of(consumer)
        if src == dst:
            continue  # RTE-local
        if cache is not None:
            buses = cache.route_buses(src, dst)
        else:
            try:
                buses = model.topology.route_buses(src, dst)
            except Exception:
                buses = None
        if buses is None:
            result.add(
                "route",
                interface.name,
                f"no communication path {src} -> {dst}",
            )
            continue
        for bus in buses:
            if (
                det_producer
                and bus.technology == "ethernet"
                and not bus.tsn_capable
            ):
                result.add(
                    "isolation",
                    interface.name,
                    f"deterministic traffic over non-TSN segment {bus.name}",
                    severity=Severity.WARNING,
                )
            if bw:
                bus_load[bus.name] = bus_load.get(bus.name, 0.0) + bw
        reqs = interface.requirements
        if reqs.max_latency is not None:
            if cache is not None:
                est = cache.estimate_latency(src, dst, payload)
            else:
                est = estimate_latency(model, src, dst, payload)
            if est > reqs.max_latency:
                result.add(
                    "latency",
                    interface.name,
                    f"estimated {est * 1e3:.3f} ms exceeds budget "
                    f"{reqs.max_latency * 1e3:.3f} ms ({src} -> {dst})",
                )
        if reqs.min_bandwidth_bps is not None:
            bottleneck = min(b.bitrate_bps for b in buses)
            if reqs.min_bandwidth_bps > bottleneck * BUS_UTILIZATION_LIMIT:
                result.add(
                    "bandwidth",
                    interface.name,
                    f"needs {reqs.min_bandwidth_bps / 1e6:g} Mbit/s, route "
                    f"bottleneck is {bottleneck / 1e6:g} Mbit/s",
                )
    for bus_name, load in bus_load.items():
        capacity = model.topology.bus(bus_name).bitrate_bps
        if load > capacity * BUS_UTILIZATION_LIMIT:
            result.add(
                "bus_overload",
                bus_name,
                f"planned load {load / 1e6:.2f} Mbit/s exceeds "
                f"{BUS_UTILIZATION_LIMIT:.0%} of {capacity / 1e6:g} Mbit/s",
            )


def _capable_hosts(model: SystemModel, app) -> List[str]:
    """ECUs that could host ``app`` (capability screen, not load-aware)."""
    hosts = []
    for ecu in model.topology.ecus:
        if app.has_deterministic_tasks and not ecu.os_class.supports_deterministic:
            continue
        if app.needs_gpu and not ecu.has_gpu:
            continue
        if app.needs_mmu_isolation and not ecu.has_mmu:
            continue
        if app.memory_kib > ecu.memory_kib or app.image_kib > ecu.flash_kib:
            continue
        hosts.append(ecu.name)
    return hosts


def _check_redundancy(
    model: SystemModel, deployment: Deployment, result: VerificationResult
) -> None:
    """Section 3.3: fail-operational apps need enough capable hosts —
    "it might be necessary to install multiple ECUs running the dynamic
    platform"."""
    for app in model.apps:
        if not app.fail_operational:
            continue
        hosts = _capable_hosts(model, app)
        if len(hosts) < app.min_replicas:
            result.add(
                "redundancy",
                app.name,
                f"fail-operational app needs {app.min_replicas} capable "
                f"hosts, topology offers {len(hosts)} ({hosts})",
            )


def verify(
    model: SystemModel,
    deployment: Deployment,
    cache: Optional[VerifyCache] = None,
) -> VerificationResult:
    """Check one deployment against all rules.  Never raises; inspect
    :attr:`VerificationResult.ok`.

    Passing a :class:`VerifyCache` (bound to the same model) reuses the
    deployment-independent findings — structural checks, redundancy
    capability counts, routes and latency estimates — which dominate the
    cost when verifying many deployments of one model (DSE).
    """
    result = VerificationResult()
    if cache is not None:
        structural = cache.structural_violations()
    else:
        structural = model.structural_violations()
    for message in structural:
        result.add("structure", "model", message)
    for app in model.apps:
        if not deployment.is_placed(app.name):
            result.add("placement", app.name, "app is not placed")
    for app_name in deployment.apps:
        try:
            model.app(app_name)
        except Exception:
            result.add("placement", app_name, "deployment places unknown app")
    for app_name in deployment.apps:
        placement = deployment.placement(app_name)
        try:
            spec = model.topology.ecu(placement.ecu)
        except Exception:
            result.add("placement", app_name, f"unknown ECU {placement.ecu!r}")
            continue
        if placement.core >= spec.cores:
            result.add(
                "placement",
                app_name,
                f"core {placement.core} out of range on {placement.ecu} "
                f"({spec.cores} cores)",
            )
    _check_resources(model, deployment, result)
    _check_os_rules(model, deployment, result)
    _check_determinism(model, deployment, result)
    _check_communication(model, deployment, result, cache)
    if cache is not None:
        result.violations.extend(cache.redundancy_violations())
    else:
        _check_redundancy(model, deployment, result)
    return result


def verify_variant_space(
    model: SystemModel, space: VariantSpace, *, include_warnings: bool = False
) -> Tuple[int, int, Dict[str, VerificationResult]]:
    """Verify every concrete deployment of ``space``.

    Returns ``(n_ok, n_total, failures)`` where ``failures`` maps a
    deployment's repr to its failing result.  With ``include_warnings``
    a deployment also counts as failing when it only carries warnings
    (e.g. unbounded-jitter deterministic tasks), for callers that want
    the strict reading of "every possible mapping is functional".
    """
    n_ok = 0
    n_total = 0
    failures: Dict[str, VerificationResult] = {}
    for deployment in space.enumerate():
        n_total += 1
        result = verify(model, deployment)
        if result.ok and not (include_warnings and result.warnings):
            n_ok += 1
        else:
            failures[repr(deployment.as_dict())] = result
    return n_ok, n_total, failures
