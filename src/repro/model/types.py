"""Complex data types for interface definitions.

Section 2.2: "The communication is no longer based on signals defined by
bit offsets, but on complex objects, defined by complex data types."  This
module provides the type system those complex objects are defined in; its
only runtime job is computing serialised sizes, which drive the network
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ModelError

#: Sizes of the primitive types, in bytes.
_PRIMITIVE_SIZES: Dict[str, int] = {
    "bool": 1,
    "uint8": 1,
    "int8": 1,
    "uint16": 2,
    "int16": 2,
    "uint32": 4,
    "int32": 4,
    "uint64": 8,
    "int64": 8,
    "float32": 4,
    "float64": 8,
}


class DataType:
    """Base class of the type system.

    Subclasses are frozen dataclasses carrying a ``name`` field.
    """

    def byte_size(self) -> int:
        """Serialised size of one value of this type."""
        raise NotImplementedError

    def describe(self) -> str:
        return getattr(self, "name", "") or type(self).__name__


@dataclass(frozen=True)
class Primitive(DataType):
    """A fixed-size scalar."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _PRIMITIVE_SIZES:
            raise ModelError(
                f"unknown primitive {self.name!r}; "
                f"choose from {sorted(_PRIMITIVE_SIZES)}"
            )

    def byte_size(self) -> int:
        return _PRIMITIVE_SIZES[self.name]


@dataclass(frozen=True)
class ArrayType(DataType):
    """A fixed-length array of a single element type."""

    element: DataType
    length: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ModelError("array length must be positive")

    def byte_size(self) -> int:
        return self.element.byte_size() * self.length

    def describe(self) -> str:
        return self.name or f"{self.element.describe()}[{self.length}]"


@dataclass(frozen=True)
class StructType(DataType):
    """A named record of (field name, type) pairs."""

    name: str
    fields: Tuple[Tuple[str, DataType], ...]

    def __post_init__(self) -> None:
        names = [f for f, _t in self.fields]
        if len(names) != len(set(names)):
            raise ModelError(f"struct {self.name!r}: duplicate field names")
        if not self.fields:
            raise ModelError(f"struct {self.name!r}: empty struct")

    def byte_size(self) -> int:
        return sum(t.byte_size() for _f, t in self.fields)

    def field_type(self, field_name: str) -> DataType:
        for f, t in self.fields:
            if f == field_name:
                return t
        raise ModelError(f"struct {self.name!r} has no field {field_name!r}")


class TypeRegistry:
    """Named types usable across interface definitions."""

    def __init__(self) -> None:
        self._types: Dict[str, DataType] = {
            name: Primitive(name) for name in _PRIMITIVE_SIZES
        }

    def define_struct(
        self, name: str, fields: List[Tuple[str, str]]
    ) -> StructType:
        """Define a struct whose field types are named types."""
        if name in self._types:
            raise ModelError(f"type {name!r} already defined")
        struct = StructType(
            name=name,
            fields=tuple((f, self.get(type_name)) for f, type_name in fields),
        )
        self._types[name] = struct
        return struct

    def define_array(self, name: str, element: str, length: int) -> ArrayType:
        if name in self._types:
            raise ModelError(f"type {name!r} already defined")
        array = ArrayType(element=self.get(element), length=length, name=name)
        self._types[name] = array
        return array

    def get(self, name: str) -> DataType:
        try:
            return self._types[name]
        except KeyError:
            raise ModelError(f"unknown type {name!r}") from None

    def size_of(self, name: str) -> int:
        return self.get(name).byte_size()

    def __contains__(self, name: str) -> bool:
        return name in self._types


def standard_types() -> TypeRegistry:
    """A registry preloaded with common automotive payload types."""
    reg = TypeRegistry()
    reg.define_struct(
        "WheelSpeeds",
        [("fl", "float32"), ("fr", "float32"), ("rl", "float32"), ("rr", "float32")],
    )
    reg.define_struct(
        "VehicleState",
        [
            ("speed_mps", "float32"),
            ("accel_mps2", "float32"),
            ("yaw_rate", "float32"),
            ("steering_angle", "float32"),
            ("timestamp_us", "uint64"),
        ],
    )
    reg.define_struct(
        "ObjectHypothesis",
        [
            ("id", "uint32"),
            ("x", "float32"),
            ("y", "float32"),
            ("vx", "float32"),
            ("vy", "float32"),
            ("classification", "uint8"),
            ("confidence", "float32"),
        ],
    )
    reg.define_array("ObjectList", "ObjectHypothesis", 32)
    reg.define_array("CameraFrameChunk", "uint8", 1024)
    reg.define_struct(
        "BrakeCommand",
        [("pressure_bar", "float32"), ("mode", "uint8"), ("timestamp_us", "uint64")],
    )
    reg.define_struct(
        "DiagnosticRecord",
        [("code", "uint32"), ("severity", "uint8"), ("payload", "uint64")],
    )
    return reg
