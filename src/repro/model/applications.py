"""Application DSL: the unit of addition and update (Section 1.1).

"In analogy to the consumer electronics world, an application (app) is the
smallest unit of addition and update."  An :class:`AppModel` declares its
tasks, the interfaces it provides and requires, its resource needs, and
its safety level — everything the verification engine, admission control
and security layer reason over.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Tuple

from ..errors import ModelError
from ..osal.task import Criticality, TaskSpec


class Asil(IntEnum):
    """ISO 26262 automotive safety integrity levels (ordered QM < A < ... < D)."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4


@dataclass(frozen=True)
class RequiredInterface:
    """A dependency on an interface owned by another application."""

    name: str
    version: Tuple[int, int] = (1, 0)


@dataclass(frozen=True)
class AppModel:
    """One application in the system model.

    Attributes:
        name: unique application name.
        tasks: the app's task set (periods/WCETs on the reference core).
        provides: names of interfaces this app owns.
        requires: interfaces (and versions) this app consumes.
        asil: safety integrity level.
        memory_kib: RAM footprint when instantiated.
        image_kib: flash footprint of the installable package.
        needs_gpu: requires a GPU-equipped ECU.
        needs_mmu_isolation: must be placed in a private process.
        own_process: run in a dedicated process even if combinable.
        fail_operational: requires hot-standby replicas at runtime
            (Section 3.3) — the verification engine checks the topology
            offers enough capable hosts.
        min_replicas: replica count when ``fail_operational`` is set.
        version: application software version (for updates).
    """

    name: str
    tasks: Tuple[TaskSpec, ...] = ()
    provides: Tuple[str, ...] = ()
    requires: Tuple[RequiredInterface, ...] = ()
    asil: Asil = Asil.QM
    memory_kib: float = 256.0
    image_kib: float = 1024.0
    needs_gpu: bool = False
    needs_mmu_isolation: bool = False
    own_process: bool = True
    fail_operational: bool = False
    min_replicas: int = 2
    version: Tuple[int, int] = (1, 0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("application needs a name")
        task_names = [t.name for t in self.tasks]
        if len(task_names) != len(set(task_names)):
            raise ModelError(f"app {self.name!r}: duplicate task names")
        if self.memory_kib < 0 or self.image_kib < 0:
            raise ModelError(f"app {self.name!r}: negative resource sizes")
        if self.fail_operational and self.min_replicas < 2:
            raise ModelError(
                f"app {self.name!r}: fail-operational needs >= 2 replicas"
            )
        det = self.has_deterministic_tasks
        if self.asil >= Asil.C and not det and self.tasks:
            raise ModelError(
                f"app {self.name!r}: ASIL {self.asil.name} requires "
                "deterministic tasks"
            )

    @property
    def has_deterministic_tasks(self) -> bool:
        return any(t.criticality is Criticality.DETERMINISTIC for t in self.tasks)

    @property
    def is_deterministic(self) -> bool:
        """An app is deterministic iff all of its tasks are."""
        return bool(self.tasks) and all(
            t.criticality is Criticality.DETERMINISTIC for t in self.tasks
        )

    @property
    def utilization(self) -> float:
        return sum(t.utilization for t in self.tasks)

    def task(self, name: str) -> TaskSpec:
        for t in self.tasks:
            if t.name == name:
                return t
        raise ModelError(f"app {self.name!r} has no task {name!r}")

    def bumped(self, *, minor: bool = True) -> "AppModel":
        """A copy with the version bumped (update packaging helper)."""
        from dataclasses import replace

        major, min_v = self.version
        new_version = (major, min_v + 1) if minor else (major + 1, 0)
        return replace(self, version=new_version)


def check_asil_dependencies(
    apps: Dict[str, AppModel], interface_owner: Dict[str, str]
) -> List[str]:
    """Verify the safety-rating rule of Section 3.

    "Only with correct safe dependencies can a software module be
    considered safe": every interface an app depends on must be owned by
    an app with an ASIL at least as high as the dependent's.

    Returns a list of human-readable violations (empty = ok).
    """
    violations = []
    for app in apps.values():
        for req in app.requires:
            owner_name = interface_owner.get(req.name)
            if owner_name is None:
                violations.append(
                    f"{app.name}: required interface {req.name!r} has no owner"
                )
                continue
            owner = apps.get(owner_name)
            if owner is None:
                violations.append(
                    f"{app.name}: interface {req.name!r} owned by unknown app "
                    f"{owner_name!r}"
                )
                continue
            if owner.asil < app.asil:
                violations.append(
                    f"{app.name} (ASIL {app.asil.name}) depends on "
                    f"{req.name!r} provided by {owner.name} "
                    f"(ASIL {owner.asil.name})"
                )
    return violations
