"""Code/config generation from the model (the "Integration is key" part
of Section 2.2: "generate code stubs, configurations for communication
stacks and a middleware on devices, or input for simulation environments").

Outputs:

* :class:`MiddlewareConfig` — service-id assignment, QoS per interface,
  and the subscription/access-control matrices consumed by
  :mod:`repro.core` (platform bring-up) and
  :mod:`repro.security.access_control` (ACL derivation, Section 4.2);
* :func:`generate_stub` — human-readable Python stub code for an
  application, useful for docs and as the paper's "code stubs" artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..errors import ModelError
from ..middleware.endpoint import QOS_BULK, QOS_CONTROL, QOS_DEFAULT, QoS
from .interfaces import InterfaceDef, InterfaceKind
from .system import SystemModel

#: Service ids are assigned from this base, in interface definition order.
SERVICE_ID_BASE = 0x1000


@dataclass
class MiddlewareConfig:
    """Everything the runtime needs to wire services for a system model."""

    service_ids: Dict[str, int] = field(default_factory=dict)
    qos: Dict[str, QoS] = field(default_factory=dict)
    #: interface -> (owner app, consumer app names)
    producers: Dict[str, str] = field(default_factory=dict)
    consumers: Dict[str, List[str]] = field(default_factory=dict)
    #: app -> service ids it may bind to (the access-control matrix)
    allowed_bindings: Dict[str, Set[int]] = field(default_factory=dict)

    def service_id(self, interface_name: str) -> int:
        try:
            return self.service_ids[interface_name]
        except KeyError:
            raise ModelError(f"no service id for {interface_name!r}") from None

    def qos_for(self, interface_name: str) -> QoS:
        return self.qos.get(interface_name, QOS_DEFAULT)

    def may_bind(self, app_name: str, service_id: int) -> bool:
        """The Section 4.2 check: is this binding in the model?"""
        return service_id in self.allowed_bindings.get(app_name, set())


def derive_qos(model: SystemModel, interface: InterfaceDef) -> QoS:
    """Map an interface's kind + owner criticality to transport QoS."""
    owner = model.app(interface.owner)
    if owner.is_deterministic and interface.kind is not InterfaceKind.STREAM:
        return QOS_CONTROL
    if interface.kind is InterfaceKind.STREAM:
        return QOS_BULK
    return QOS_DEFAULT


def generate_config(model: SystemModel) -> MiddlewareConfig:
    """Derive the full middleware configuration from the system model.

    The access-control matrix contains, per app, exactly the services it
    owns or explicitly requires — "These definitions should be
    automatically extracted from the modeling approach" (Section 4.2).
    """
    violations = model.structural_violations()
    if violations:
        raise ModelError(
            "cannot generate config for an inconsistent model: "
            + "; ".join(violations)
        )
    config = MiddlewareConfig()
    for index, interface in enumerate(model.interfaces):
        sid = interface.service_id or (SERVICE_ID_BASE + index)
        config.service_ids[interface.name] = sid
        config.qos[interface.name] = derive_qos(model, interface)
        config.producers[interface.name] = interface.owner
        config.consumers[interface.name] = [
            app.name for app in model.consumers_of(interface.name)
        ]
        config.allowed_bindings.setdefault(interface.owner, set()).add(sid)
        for consumer in config.consumers[interface.name]:
            config.allowed_bindings.setdefault(consumer, set()).add(sid)
    for app in model.apps:
        config.allowed_bindings.setdefault(app.name, set())
    return config


def generate_stub(model: SystemModel, app_name: str) -> str:
    """Emit a Python skeleton for one application's middleware bindings."""
    app = model.app(app_name)
    config = generate_config(model)
    docstring = (
        f"Generated stub for application {app.name!r} "
        f"(v{app.version[0]}.{app.version[1]}, ASIL {app.asil.name})."
    )
    lines = [
        f'"""{docstring}"""',
        "",
        "from repro.middleware import (",
        "    EventConsumer, EventProducer, RpcClient, RpcServer,",
        "    StreamSink, StreamSource,",
        ")",
        "",
        f"def bind_{app.name}(endpoint):",
    ]
    body: List[str] = []
    for name in app.provides:
        interface = model.interface(name)
        sid = config.service_id(name)
        if interface.kind is InterfaceKind.EVENT:
            body.append(
                f"    {name} = EventProducer(endpoint, {sid:#06x}, 1, "
                f"provider_app={app.name!r})"
            )
        elif interface.kind is InterfaceKind.MESSAGE:
            body.append(
                f"    {name} = RpcServer(endpoint, {sid:#06x}, "
                f"provider_app={app.name!r})"
            )
            body.append(
                f"    # {name}.register_method(1, handler)  # TODO implement"
            )
        else:
            body.append(
                f"    {name} = StreamSource(endpoint, {sid:#06x}, 1, "
                f"provider_app={app.name!r}, "
                f"sample_bytes={interface.payload_bytes}, "
                f"period={interface.requirements.period})"
            )
    for req in app.requires:
        interface = model.interface(req.name)
        sid = config.service_id(req.name)
        if interface.kind is InterfaceKind.EVENT:
            body.append(
                f"    {req.name}_sub = EventConsumer(endpoint, {sid:#06x}, 1, "
                f"client_app={app.name!r}, on_data=on_{req.name})"
            )
        elif interface.kind is InterfaceKind.MESSAGE:
            body.append(
                f"    {req.name}_client = RpcClient(endpoint, {sid:#06x}, "
                f"client_app={app.name!r})"
            )
        else:
            body.append(
                f"    {req.name}_sink = StreamSink(endpoint, {sid:#06x}, 1, "
                f"client_app={app.name!r})"
            )
    if not body:
        body.append("    pass")
    lines.extend(body)
    lines.append("")
    return "\n".join(lines)
