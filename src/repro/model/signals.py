"""Legacy signal catalog and migration to service-oriented interfaces.

Section 2 opens with today's pain: "functions typically are communicating
via signals ... There is, however, no unambiguous definition of signals
between applications on one ECU.  Different ECUs describe signals in
different fashions.  Some signals are not documented at all.  Thus,
finding emitting, consuming and controlling entities to a signal can be a
tedious task."  And Section 2.1: "the currently existing signals can be
mapped to this [event] communication paradigm."

This module models the legacy world — bit-offset signals inside frames,
with possibly unknown emitters/consumers — and implements the migration:
every fully documented signal becomes an event interface owned by its
emitter; the gaps become an auditable report instead of silent folklore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ModelError
from .interfaces import InterfaceDef, InterfaceKind, InterfaceRequirements
from .types import TypeRegistry


@dataclass(frozen=True)
class SignalDef:
    """One legacy signal: bits inside a frame on a bus.

    Attributes:
        name: signal name (unique within the catalog).
        frame_id: CAN identifier (or FlexRay slot) carrying it.
        bit_offset / bit_length: position inside the frame payload.
        cycle_time: transmission period in seconds (None = event-driven).
        emitter: producing ECU/function, or ``None`` if undocumented.
        consumers: known consuming functions (possibly incomplete).
        unit: physical unit string, for documentation.
    """

    name: str
    frame_id: int
    bit_offset: int
    bit_length: int
    cycle_time: Optional[float] = None
    emitter: Optional[str] = None
    consumers: Tuple[str, ...] = ()
    unit: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.bit_offset < 64:
            raise ModelError(f"signal {self.name!r}: bit offset out of frame")
        if self.bit_length <= 0 or self.bit_offset + self.bit_length > 64:
            raise ModelError(f"signal {self.name!r}: bits exceed 8-byte frame")
        if self.cycle_time is not None and self.cycle_time <= 0:
            raise ModelError(f"signal {self.name!r}: invalid cycle time")

    @property
    def documented(self) -> bool:
        """Fully documented: emitter known and at least one consumer."""
        return self.emitter is not None and bool(self.consumers)

    def fits_primitive(self) -> str:
        """Smallest standard primitive that holds this signal."""
        for name, bits in (("uint8", 8), ("uint16", 16), ("uint32", 32), ("uint64", 64)):
            if self.bit_length <= bits:
                return name
        raise ModelError(f"signal {self.name!r}: too wide")  # pragma: no cover


class SignalCatalog:
    """The (incomplete) signal database of a legacy vehicle."""

    def __init__(self) -> None:
        self._signals: Dict[str, SignalDef] = {}

    def add(self, signal: SignalDef) -> SignalDef:
        if signal.name in self._signals:
            raise ModelError(f"signal {signal.name!r} already defined")
        overlapping = self._find_overlap(signal)
        if overlapping is not None:
            raise ModelError(
                f"signal {signal.name!r} overlaps {overlapping!r} in frame "
                f"{signal.frame_id:#x}"
            )
        self._signals[signal.name] = signal
        return signal

    def _find_overlap(self, candidate: SignalDef) -> Optional[str]:
        lo = candidate.bit_offset
        hi = lo + candidate.bit_length
        for other in self._signals.values():
            if other.frame_id != candidate.frame_id:
                continue
            o_lo = other.bit_offset
            o_hi = o_lo + other.bit_length
            if lo < o_hi and o_lo < hi:
                return other.name
        return None

    def get(self, name: str) -> SignalDef:
        try:
            return self._signals[name]
        except KeyError:
            raise ModelError(f"unknown signal {name!r}") from None

    @property
    def signals(self) -> List[SignalDef]:
        return list(self._signals.values())

    def signals_in_frame(self, frame_id: int) -> List[SignalDef]:
        return sorted(
            (s for s in self._signals.values() if s.frame_id == frame_id),
            key=lambda s: s.bit_offset,
        )

    def undocumented(self) -> List[SignalDef]:
        """The paper's pain point: signals nobody can account for."""
        return [s for s in self._signals.values() if not s.documented]

    def emitters(self) -> Tuple[str, ...]:
        """Distinct emitter ECUs, sorted so callers can iterate safely."""
        return tuple(sorted({s.emitter for s in self._signals.values() if s.emitter}))


@dataclass
class MigrationReport:
    """Outcome of migrating a signal catalog to interfaces."""

    interfaces: List[InterfaceDef] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (signal, reason)
    frames_consolidated: int = 0

    @property
    def migrated_count(self) -> int:
        return len(self.interfaces)

    def summary(self) -> str:
        lines = [
            f"migrated {self.migrated_count} signals to event interfaces "
            f"({self.frames_consolidated} frames consolidated)",
        ]
        if self.skipped:
            lines.append(f"skipped {len(self.skipped)}:")
            for name, reason in self.skipped:
                lines.append(f"  - {name}: {reason}")
        return "\n".join(lines)


def migrate_catalog(
    catalog: SignalCatalog,
    types: Optional[TypeRegistry] = None,
    *,
    default_latency: float = 0.05,
) -> MigrationReport:
    """Map every documented signal to an event interface (Section 2.1).

    The interface owner is the signal's emitter (the event paradigm's
    ownership rule); the data type is the smallest primitive holding the
    signal; the nominal period is the legacy cycle time.  Undocumented
    signals are *not* silently guessed — they land in the report's
    ``skipped`` list for engineering follow-up, which is exactly the
    traceability the paper asks for.
    """
    types = types or TypeRegistry()
    report = MigrationReport()
    frames: Set[int] = set()
    for signal in catalog.signals:
        if signal.emitter is None:
            report.skipped.append((signal.name, "no documented emitter"))
            continue
        if not signal.consumers:
            report.skipped.append((signal.name, "no documented consumers"))
            continue
        requirements = InterfaceRequirements(
            period=signal.cycle_time,
            max_latency=(
                signal.cycle_time if signal.cycle_time else default_latency
            ),
        )
        interface = InterfaceDef(
            name=f"sig_{signal.name}",
            kind=InterfaceKind.EVENT,
            owner=signal.emitter,
            data_type=types.get(signal.fits_primitive()),
            requirements=requirements,
        )
        report.interfaces.append(interface)
        frames.add(signal.frame_id)
    report.frames_consolidated = len(frames)
    return report


def legacy_body_catalog() -> SignalCatalog:
    """A representative body-domain catalog, including the usual mess."""
    catalog = SignalCatalog()
    entries = [
        SignalDef("vehicle_speed", 0x100, 0, 16, 0.02, "esp",
                  ("dashboard", "acc", "navigation"), "km/h"),
        SignalDef("engine_rpm", 0x100, 16, 16, 0.02, "engine_ctrl",
                  ("dashboard", "gearbox"), "rpm"),
        SignalDef("coolant_temp", 0x100, 32, 8, 0.1, "engine_ctrl",
                  ("dashboard",), "degC"),
        SignalDef("door_fl_open", 0x210, 0, 1, 0.1, "body_ctrl",
                  ("dashboard", "interior_light")),
        SignalDef("door_fr_open", 0x210, 1, 1, 0.1, "body_ctrl",
                  ("dashboard", "interior_light")),
        SignalDef("wiper_speed", 0x210, 8, 3, 0.1, "body_ctrl",
                  ("rain_sensor",)),
        # the undocumented tail every real vehicle drags along:
        SignalDef("mystery_counter", 0x3F0, 0, 8, 0.1, None, ()),
        SignalDef("legacy_flag_7", 0x3F0, 8, 1, None, "body_ctrl", ()),
    ]
    for signal in entries:
        catalog.add(signal)
    return catalog
