"""Deployment DSL: mapping applications to ECUs, with variability.

Section 2.3: "it can be necessary to include variances in the model and
not define every mapping and interconnection uniquely.  The final mapping
might only be applied in the vehicle on the road.  However, it needs to be
ensured that every possible mapping is functional, safe, and secure."

:class:`Deployment` is one concrete mapping; :class:`VariantSpace`
describes the allowed alternatives per app and can enumerate every
concrete deployment for exhaustive pre-verification.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ModelError


@dataclass
class Placement:
    """Where one app runs: ECU plus (for multicore) a core index."""

    ecu: str
    core: int = 0

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ModelError("core index cannot be negative")


class Deployment:
    """A concrete app -> placement mapping."""

    def __init__(self, mapping: Optional[Dict[str, Placement]] = None) -> None:
        self._mapping: Dict[str, Placement] = dict(mapping or {})

    def place(self, app_name: str, ecu: str, core: int = 0) -> "Deployment":
        """Assign (or reassign) an app.  Returns self for chaining."""
        self._mapping[app_name] = Placement(ecu, core)
        return self

    def remove(self, app_name: str) -> None:
        self._mapping.pop(app_name, None)

    def placement(self, app_name: str) -> Placement:
        try:
            return self._mapping[app_name]
        except KeyError:
            raise ModelError(f"app {app_name!r} is not placed") from None

    def ecu_of(self, app_name: str) -> str:
        return self.placement(app_name).ecu

    def is_placed(self, app_name: str) -> bool:
        return app_name in self._mapping

    @property
    def apps(self) -> List[str]:
        return list(self._mapping)

    def apps_on(self, ecu: str) -> List[str]:
        return [a for a, p in self._mapping.items() if p.ecu == ecu]

    def apps_on_core(self, ecu: str, core: int) -> List[str]:
        return [
            a
            for a, p in self._mapping.items()
            if p.ecu == ecu and p.core == core
        ]

    def used_ecus(self) -> List[str]:
        return sorted({p.ecu for p in self._mapping.values()})

    def copy(self) -> "Deployment":
        return Deployment(
            {a: Placement(p.ecu, p.core) for a, p in self._mapping.items()}
        )

    def as_dict(self) -> Dict[str, Tuple[str, int]]:
        return {a: (p.ecu, p.core) for a, p in self._mapping.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Deployment):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Deployment {self.as_dict()}>"


class VariantSpace:
    """Allowed placements per application.

    ``candidates[app] = [(ecu, core), ...]`` — the dynamic platform may
    realise any combination at runtime, so all of them must be verified.
    """

    def __init__(self) -> None:
        self._candidates: Dict[str, List[Tuple[str, int]]] = {}

    def allow(self, app_name: str, ecu: str, core: int = 0) -> "VariantSpace":
        self._candidates.setdefault(app_name, [])
        option = (ecu, core)
        if option not in self._candidates[app_name]:
            self._candidates[app_name].append(option)
        return self

    def candidates(self, app_name: str) -> List[Tuple[str, int]]:
        try:
            return list(self._candidates[app_name])
        except KeyError:
            raise ModelError(f"no variants declared for {app_name!r}") from None

    @property
    def apps(self) -> List[str]:
        return list(self._candidates)

    def size(self) -> int:
        """Number of concrete deployments in the space."""
        total = 1
        for options in self._candidates.values():
            total *= len(options)
        return total if self._candidates else 0

    def enumerate(self) -> Iterator[Deployment]:
        """Yield every concrete deployment (use only for small spaces)."""
        if not self._candidates:
            return
        names = list(self._candidates)
        for combo in itertools.product(
            *(self._candidates[n] for n in names)
        ):
            deployment = Deployment()
            for name, (ecu, core) in zip(names, combo):
                deployment.place(name, ecu, core)
            yield deployment
