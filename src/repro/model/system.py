"""The integrated system model: hardware + interfaces + applications.

This is the "set of Domain-Specific Languages ... to describe the system
in a formal way, which can be checked for correctness" (Section 2.2), tied
together in one object that the verification engine, DSE, codegen and the
dynamic platform all consume.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ModelError
from ..hw.topology import Topology
from .applications import AppModel, check_asil_dependencies
from .interfaces import InterfaceDef


class SystemModel:
    """Hardware topology, interface catalog and application set."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._interfaces: Dict[str, InterfaceDef] = {}
        self._apps: Dict[str, AppModel] = {}

    # -- construction --------------------------------------------------------

    def add_interface(self, interface: InterfaceDef) -> InterfaceDef:
        if interface.name in self._interfaces:
            raise ModelError(f"interface {interface.name!r} already defined")
        self._interfaces[interface.name] = interface
        return interface

    def add_app(self, app: AppModel) -> AppModel:
        if app.name in self._apps:
            raise ModelError(f"app {app.name!r} already defined")
        self._apps[app.name] = app
        return app

    def replace_app(self, app: AppModel) -> AppModel:
        """Swap an app definition (model side of an update)."""
        if app.name not in self._apps:
            raise ModelError(f"cannot update unknown app {app.name!r}")
        self._apps[app.name] = app
        return app

    def remove_app(self, name: str) -> None:
        if name not in self._apps:
            raise ModelError(f"cannot remove unknown app {name!r}")
        del self._apps[name]

    # -- queries ----------------------------------------------------------------

    def interface(self, name: str) -> InterfaceDef:
        try:
            return self._interfaces[name]
        except KeyError:
            raise ModelError(f"unknown interface {name!r}") from None

    def app(self, name: str) -> AppModel:
        try:
            return self._apps[name]
        except KeyError:
            raise ModelError(f"unknown app {name!r}") from None

    @property
    def interfaces(self) -> List[InterfaceDef]:
        return list(self._interfaces.values())

    @property
    def apps(self) -> List[AppModel]:
        return list(self._apps.values())

    def interface_owner(self) -> Dict[str, str]:
        """Interface name -> owning application name."""
        return {i.name: i.owner for i in self._interfaces.values()}

    def consumers_of(self, interface_name: str) -> List[AppModel]:
        """Apps that require ``interface_name``."""
        return [
            app
            for app in self._apps.values()
            if any(r.name == interface_name for r in app.requires)
        ]

    def communication_pairs(self) -> List[tuple]:
        """(producer app, consumer app, interface) triples in the model."""
        pairs = []
        for interface in self._interfaces.values():
            for consumer in self.consumers_of(interface.name):
                pairs.append((interface.owner, consumer.name, interface))
        return pairs

    # -- structural validation -----------------------------------------------

    def structural_violations(self) -> List[str]:
        """Model-level checks that need no deployment: ownership, versions,
        dangling references, ASIL dependency ordering."""
        violations: List[str] = []
        owners = self.interface_owner()
        for interface in self._interfaces.values():
            if interface.owner not in self._apps:
                violations.append(
                    f"interface {interface.name!r} owned by unknown app "
                    f"{interface.owner!r}"
                )
        for app in self._apps.values():
            for provided in app.provides:
                if provided not in self._interfaces:
                    violations.append(
                        f"app {app.name!r} provides unknown interface "
                        f"{provided!r}"
                    )
                elif self._interfaces[provided].owner != app.name:
                    violations.append(
                        f"app {app.name!r} provides {provided!r} but its "
                        f"owner is {self._interfaces[provided].owner!r}"
                    )
            for req in app.requires:
                if req.name not in self._interfaces:
                    violations.append(
                        f"app {app.name!r} requires unknown interface "
                        f"{req.name!r}"
                    )
                    continue
                interface = self._interfaces[req.name]
                if not interface.compatible_with(req.version):
                    violations.append(
                        f"app {app.name!r} requires {req.name!r} "
                        f"v{req.version} but provider offers "
                        f"v{interface.version}"
                    )
        violations.extend(check_asil_dependencies(self._apps, owners))
        return violations
