"""Runtime reconfiguration: moving applications between ECUs.

Section 2.3: "the deployment of a function to a hardware can depend on
the installed applications and current load of every hardware component
in the vehicle", and ref [20] proposes runtime activation/deactivation of
components coordinated by a synchronization component.

:class:`ReconfigurationManager` implements live **migration** of an app
from one platform node to another with the same staged mechanics as an
update (Section 3.2), plus a **load balancer** that proposes migrations
when a node's deterministic utilization crosses a threshold — always
gated by admission control on the target, so a reconfiguration can never
create an unsafe state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AdmissionError, PlatformError, UpdateError
from ..middleware.registry import ServiceOffer
from ..osal.analysis import scaled_utilization
from ..sim import Signal, Simulator
from .application import AppState
from .platform import DynamicPlatform
from .update import REDIRECT_LATENCY, STATE_SYNC_RATE

#: Extra per-migration latency for shipping the image if the target does
#: not hold it yet is paid through the normal install path instead.
MIGRATION_HANDOVER_LATENCY = 0.002


@dataclass
class MigrationReport:
    """Measured outcome of one live migration."""

    app: str
    source: str
    target: str
    started_at: float
    finished_at: float = 0.0
    downtime: float = 0.0
    success: bool = False
    failure_reason: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class ReconfigurationManager:
    """Live migration and load balancing on a :class:`DynamicPlatform`."""

    def __init__(self, platform: DynamicPlatform) -> None:
        self.platform = platform
        self.sim: Simulator = platform.sim
        self.reports: List[MigrationReport] = []

    # -- live migration -------------------------------------------------------

    def migrate(
        self,
        app_name: str,
        source: str,
        target: str,
        *,
        startup_latency: float = 0.01,
    ) -> Signal:
        """Move a running app from ``source`` to ``target`` without a gap.

        Staged mechanics: admission-check the target, start a second
        instance there, synchronise state, redirect service offers, stop
        the source instance.  The signal fires with a
        :class:`MigrationReport`.

        Raises:
            PlatformError / UpdateError / AdmissionError synchronously on
            precondition failures (nothing has been changed yet).
        """
        if source == target:
            raise UpdateError("source and target node are identical")
        source_node = self.platform.node(source)
        target_node = self.platform.node(target)
        running = [
            inst
            for inst in source_node.instances_of(app_name)
            if inst.state is AppState.RUNNING
        ]
        if not running:
            raise UpdateError(f"{app_name} is not running on {source}")
        old = max(running, key=lambda i: i.instance_id)
        if not target_node.has_image(app_name):
            raise PlatformError(
                f"{app_name!r} has no installed image on {target}; "
                "install it first"
            )
        model = self.platform.models[app_name]
        decision = self.platform.admission.best_core(target_node, model)
        if decision is None:
            raise AdmissionError(
                f"target {target} cannot admit {app_name}"
            )
        report = MigrationReport(
            app=app_name, source=source, target=target,
            started_at=self.sim.now,
        )
        result = self.sim.signal(name=f"migrate.{app_name}")
        new = target_node.instantiate(
            model, core_index=decision.core_index, instance_id=1
        )
        new.start(startup_latency=startup_latency)
        sync_time = old.state_size_bytes() / STATE_SYNC_RATE

        def synced() -> None:
            new.adopt_state(old.snapshot_state())
            self.sim.schedule(
                REDIRECT_LATENCY + MIGRATION_HANDOVER_LATENCY, redirected
            )

        def redirected() -> None:
            self._move_offers(app_name, source, target)
            old.stop()
            source_node.tear_down(app_name, old.instance_id)
            report.success = True
            report.downtime = 0.0
            report.finished_at = self.sim.now
            self.reports.append(report)
            self.sim.trace(
                "reconfig.migrated",
                app=app_name, source=source, target=target,
                duration=report.duration,
            )
            result.fire(report)

        self.sim.schedule(startup_latency + sync_time, synced)
        return result

    def _move_offers(self, app_name: str, source: str, target: str) -> None:
        registry = self.platform.registry
        for offer in list(registry.offers):
            if offer.provider_app == app_name and offer.ecu == source:
                registry.withdraw(offer.service_id, offer.instance_id)
                registry.offer(
                    ServiceOffer(
                        service_id=offer.service_id,
                        instance_id=offer.instance_id,
                        ecu=target,
                        provider_app=app_name,
                        version=offer.version,
                    )
                )

    # -- load balancing ---------------------------------------------------------

    def node_det_utilization(self, node_name: str) -> float:
        """Worst per-core deterministic utilization on a node."""
        node = self.platform.node(node_name)
        worst = 0.0
        for index in range(len(node.cores)):
            tasks = node.deterministic_tasks_on_core(index)
            if tasks:
                worst = max(
                    worst, scaled_utilization(tasks, node.spec.speed_factor)
                )
        return worst

    def propose_rebalance(
        self, *, threshold: float = 0.6
    ) -> List[Tuple[str, str, str]]:
        """(app, source, target) moves that would relieve overloaded nodes.

        A node is overloaded when its worst core exceeds ``threshold``
        deterministic utilization.  For each overloaded node, the
        lightest migratable deterministic app is proposed for the least
        loaded other node that admits it and holds (or could hold) the
        image.  Pure proposal — nothing is executed.
        """
        proposals: List[Tuple[str, str, str]] = []
        loads = {
            name: self.node_det_utilization(name)
            for name, node in self.platform.nodes.items()
            if not node.failed
        }
        for name, load in sorted(loads.items(), key=lambda kv: -kv[1]):
            if load <= threshold:
                continue
            node = self.platform.node(name)
            candidates = [
                inst
                for inst in node.instances.values()
                if inst.state is AppState.RUNNING
                and inst.model.has_deterministic_tasks
            ]
            candidates.sort(key=lambda i: i.model.utilization)
            for instance in candidates:
                target = self._pick_target(instance.model, exclude=name, loads=loads)
                if target is not None:
                    proposals.append((instance.model.name, name, target))
                    break
        return proposals

    def _pick_target(self, model, *, exclude: str, loads) -> Optional[str]:
        options = [
            (load, name)
            for name, load in loads.items()
            if name != exclude and not self.platform.node(name).failed
        ]
        options.sort()
        for _load, name in options:
            decision = self.platform.admission.best_core(
                self.platform.node(name), model
            )
            if decision is not None:
                return name
        return None

    def rebalance(self, *, threshold: float = 0.6) -> List[Signal]:
        """Execute every proposal (installing images on targets first)."""
        signals = []
        for app_name, source, target in self.propose_rebalance(
            threshold=threshold
        ):
            target_node = self.platform.node(target)
            if not target_node.has_image(app_name):
                # image handover from the source's flash store
                source_node = self.platform.node(source)
                if not source_node.has_image(app_name):
                    continue
                target_node.store_image(
                    app_name, self.platform.models[app_name].image_kib
                )
            signals.append(self.migrate(app_name, source, target))
        return signals
