"""Core platform services (Section 1.1).

"The dynamic platform integrates functionality common to multiple
applications. ... Additional functions can be logging, persistence
services (e.g., for configurations), and diagnosis, which is especially
important to the automotive industry."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..middleware.endpoint import Endpoint
from ..middleware.paradigms import RpcServer
from ..sim import Simulator

#: Service ids reserved for platform services.
LOGGING_SERVICE_ID = 0x0F01
PERSISTENCE_SERVICE_ID = 0x0F02
DIAGNOSIS_SERVICE_ID = 0x0F03


@dataclass(frozen=True)
class LogRecord:
    time: float
    source: str
    level: str
    message: str


class LoggingService:
    """Platform-wide structured log sink with level filtering."""

    LEVELS = ("debug", "info", "warning", "error")

    def __init__(self, sim: Simulator, *, min_level: str = "debug") -> None:
        if min_level not in self.LEVELS:
            raise ConfigurationError(f"unknown log level {min_level!r}")
        self.sim = sim
        self.min_level = min_level
        self.records: List[LogRecord] = []
        self.dropped = 0

    def log(self, source: str, level: str, message: str) -> None:
        if level not in self.LEVELS:
            raise ConfigurationError(f"unknown log level {level!r}")
        if self.LEVELS.index(level) < self.LEVELS.index(self.min_level):
            self.dropped += 1
            return
        self.records.append(
            LogRecord(time=self.sim.now, source=source, level=level, message=message)
        )

    def records_from(self, source: str) -> List[LogRecord]:
        return [r for r in self.records if r.source == source]

    def records_at_least(self, level: str) -> List[LogRecord]:
        threshold = self.LEVELS.index(level)
        return [r for r in self.records if self.LEVELS.index(r.level) >= threshold]


class PersistenceService:
    """Versioned key-value store for app configuration.

    Every write creates a new version; reads return the latest committed
    value.  ``rollback`` restores the previous version — the platform's
    safety net for bad configuration pushes.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._store: Dict[str, List[Tuple[float, Any]]] = {}

    def put(self, key: str, value: Any) -> int:
        """Write a value; returns the new version number (1-based)."""
        history = self._store.setdefault(key, [])
        history.append((self.sim.now, value))
        return len(history)

    def get(self, key: str, default: Any = None) -> Any:
        history = self._store.get(key)
        if not history:
            return default
        return history[-1][1]

    def version_count(self, key: str) -> int:
        return len(self._store.get(key, []))

    def rollback(self, key: str) -> Any:
        """Drop the latest version; returns the now-current value.

        Raises:
            ConfigurationError: if there is no earlier version.
        """
        history = self._store.get(key)
        if not history or len(history) < 2:
            raise ConfigurationError(f"nothing to roll back for {key!r}")
        history.pop()
        return history[-1][1]

    def keys(self) -> List[str]:
        return list(self._store)


@dataclass
class DiagnosticTroubleCode:
    """A stored DTC with occurrence count and freeze-frame data."""

    code: str
    first_seen: float
    last_seen: float
    count: int = 1
    freeze_frame: Dict[str, Any] = field(default_factory=dict)


class DiagnosisService:
    """Collects DTCs and answers diagnostic queries (optionally over RPC)."""

    def __init__(self, sim: Simulator, endpoint: Optional[Endpoint] = None) -> None:
        self.sim = sim
        self._dtcs: Dict[str, DiagnosticTroubleCode] = {}
        self.server: Optional[RpcServer] = None
        if endpoint is not None:
            self.server = RpcServer(
                endpoint, DIAGNOSIS_SERVICE_ID, provider_app="diagnosis_service"
            )
            self.server.register_method(1, self._rpc_read_dtcs)
            self.server.register_method(2, self._rpc_clear_dtcs)

    def report(self, code: str, freeze_frame: Optional[Dict[str, Any]] = None) -> None:
        """Record an occurrence of a trouble code."""
        existing = self._dtcs.get(code)
        if existing is None:
            self._dtcs[code] = DiagnosticTroubleCode(
                code=code,
                first_seen=self.sim.now,
                last_seen=self.sim.now,
                freeze_frame=freeze_frame or {},
            )
        else:
            existing.count += 1
            existing.last_seen = self.sim.now
            if freeze_frame:
                existing.freeze_frame = freeze_frame

    def dtcs(self) -> List[DiagnosticTroubleCode]:
        return sorted(self._dtcs.values(), key=lambda d: d.first_seen)

    def clear(self) -> int:
        """Erase all stored DTCs (tester command); returns the count."""
        n = len(self._dtcs)
        self._dtcs.clear()
        return n

    # -- RPC methods -----------------------------------------------------------

    def _rpc_read_dtcs(self, request) -> tuple:
        codes = [d.code for d in self.dtcs()]
        return codes, 4 * max(1, len(codes))

    def _rpc_clear_dtcs(self, request) -> tuple:
        return self.clear(), 4
