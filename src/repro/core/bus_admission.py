"""Runtime communication admission: bus headroom checks.

Complements CPU/memory admission (Section 3.1): before an app that adds
periodic network traffic is admitted, the platform checks that every bus
segment on its routes keeps headroom.  Two sources of truth are combined:

* **planned** load — the offered bandwidth of the app's modelled
  interfaces (like the verification engine, but incremental);
* **observed** load — a sliding-window measurement of what each segment
  actually carried in the running vehicle, which catches traffic the
  model did not anticipate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..model.deployment import Deployment
from ..model.system import SystemModel
from ..network.gateway import VehicleNetwork
from ..sim import Simulator

#: Keep buses below this fraction of their raw capacity.
BUS_HEADROOM_LIMIT = 0.8


class BusLoadTracker:
    """Sliding-window observed utilization per bus segment."""

    def __init__(
        self,
        sim: Simulator,
        network: VehicleNetwork,
        *,
        window: float = 1.0,
        sample_period: float = 0.1,
    ) -> None:
        self.sim = sim
        self.network = network
        self.window = window
        self.sample_period = sample_period
        self._samples: Dict[str, Deque[Tuple[float, int]]] = {
            name: deque() for name in network.buses
        }
        self._running = True
        # callback style so a snapshot can capture the tracker mid-window
        # (generator processes block sim.snapshot()/fork())
        sim.post(0.0, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        for name, bus in self.network.buses.items():
            samples = self._samples[name]
            samples.append((self.sim.now, bus.transmit_time))
            while samples and samples[0][0] < self.sim.now - self.window:
                samples.popleft()
        self.sim.post(self.sample_period, self._tick)

    def observed_utilization(self, bus_name: str) -> float:
        """Wire occupancy of ``bus_name`` over the sliding window."""
        samples = self._samples.get(bus_name)
        if not samples or len(samples) < 2:
            return 0.0
        (t0, b0), (t1, b1) = samples[0], samples[-1]
        if t1 <= t0:
            return 0.0
        return (b1 - b0) / (t1 - t0)

    def observed_bps(self, bus_name: str) -> float:
        """Observed load expressed as bits/second of raw capacity."""
        capacity = self.network.bus(bus_name).bitrate_bps
        return self.observed_utilization(bus_name) * capacity


@dataclass(frozen=True)
class BusAdmissionDecision:
    """Outcome of a communication admission test."""

    admitted: bool
    app: str
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.admitted


def offered_load_of(
    model: SystemModel, app_name: str, deployment: Deployment
) -> Dict[str, float]:
    """Additional bits/second per bus if ``app_name`` starts under
    ``deployment`` — producer side and consumer side of its interfaces."""
    load: Dict[str, float] = {}
    for producer, consumer, interface in model.communication_pairs():
        if app_name not in (producer, consumer):
            continue
        if not (deployment.is_placed(producer) and deployment.is_placed(consumer)):
            continue
        src = deployment.ecu_of(producer)
        dst = deployment.ecu_of(consumer)
        if src == dst:
            continue
        bandwidth = interface.offered_bandwidth_bps()
        if not bandwidth:
            continue
        for bus in model.topology.route_buses(src, dst):
            load[bus.name] = load.get(bus.name, 0.0) + bandwidth
    return load


def admit_communication(
    model: SystemModel,
    app_name: str,
    deployment: Deployment,
    *,
    tracker: Optional[BusLoadTracker] = None,
    limit: float = BUS_HEADROOM_LIMIT,
) -> BusAdmissionDecision:
    """Check bus headroom for starting ``app_name``.

    Combines the app's planned offered load with the tracker's observed
    utilization (when available).  Returns a decision; callers that want
    exceptions can ``raise_if_denied``-style check the boolean.
    """
    reasons: List[str] = []
    for bus_name, added_bps in offered_load_of(model, app_name, deployment).items():
        capacity = model.topology.bus(bus_name).bitrate_bps
        observed = tracker.observed_bps(bus_name) if tracker is not None else 0.0
        projected = (observed + added_bps) / capacity
        if projected > limit:
            reasons.append(
                f"bus {bus_name}: projected load {projected:.1%} exceeds "
                f"{limit:.0%} (observed {observed / 1e6:.2f} Mb/s + "
                f"added {added_bps / 1e6:.2f} Mb/s)"
            )
    return BusAdmissionDecision(
        admitted=not reasons, app=app_name, reasons=tuple(reasons)
    )
