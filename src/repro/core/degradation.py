"""Declared degradation modes (fail-degraded operation, Section 3.3).

A :class:`DegradationMode` names a reduced-functionality configuration of
the platform — e.g. a limp-home set: stop the comfort apps, start the
minimal drive app.  The :class:`DegradationController` owned by each
:class:`~repro.core.platform.DynamicPlatform` enters and exits declared
modes on request, and can *watch* a :class:`~repro.core.monitor.RuntimeMonitor`
so modes are activated automatically when the observed fault rate crosses
a threshold and released again on recovery (with hysteresis, so a mode is
not flapped on a rate hovering at the threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, TYPE_CHECKING

from ..errors import AdmissionError, PlatformError
from .application import AppState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .monitor import RuntimeMonitor
    from .platform import DynamicPlatform


@dataclass(frozen=True)
class DegradationMode:
    """One declared reduced-functionality configuration.

    Attributes:
        name: mode identifier.
        stop_apps: ``(app, node)`` pairs stopped on entry and restarted on
            exit (non-essential functionality shed under degradation).
        start_apps: ``(app, node)`` pairs started on entry and stopped on
            exit (the limp-home replacement set; images must be installed).
        description: free-text rationale for reports.
    """

    name: str
    stop_apps: Tuple[Tuple[str, str], ...] = ()
    start_apps: Tuple[Tuple[str, str], ...] = ()
    description: str = ""


@dataclass(frozen=True)
class DegradationEvent:
    """One mode transition, for the resilience report."""

    time: float
    mode: str
    action: str  # "enter" | "exit"
    trigger: str  # "manual" | "fault_rate" | ...
    fault_rate: float = 0.0


@dataclass
class _Watch:
    monitor: "RuntimeMonitor"
    mode: str
    enter_rate: float
    exit_rate: float
    window: float
    last_fault_count: int = 0
    events: List[DegradationEvent] = field(default_factory=list)


class DegradationController:
    """Enters and exits declared degradation modes of one platform."""

    def __init__(self, platform: "DynamicPlatform") -> None:
        self.platform = platform
        self.sim = platform.sim
        self._modes: Dict[str, DegradationMode] = {}
        self.active: Dict[str, DegradationEvent] = {}
        self.events: List[DegradationEvent] = []
        self.entries = 0
        self.exits = 0
        self.skipped_actions = 0
        metrics = self.sim.metrics
        self._m_enter = metrics.counter("degradation.enter")
        self._m_exit = metrics.counter("degradation.exit")

    # -- declaration -------------------------------------------------------

    def declare(self, mode: DegradationMode) -> DegradationMode:
        """Register a mode (idempotent by name; redeclaring replaces)."""
        self._modes[mode.name] = mode
        return mode

    def mode(self, name: str) -> DegradationMode:
        try:
            return self._modes[name]
        except KeyError:
            raise PlatformError(f"degradation mode {name!r} not declared") from None

    @property
    def declared_modes(self) -> List[str]:
        return sorted(self._modes)

    def is_active(self, name: str) -> bool:
        return name in self.active

    # -- transitions -------------------------------------------------------

    def enter(self, name: str, *, trigger: str = "manual", fault_rate: float = 0.0) -> bool:
        """Activate a declared mode.  Returns False if already active.

        App actions that cannot be applied (instance already stopped,
        admission rejection on a loaded node, missing image) are counted
        in :attr:`skipped_actions` instead of aborting the transition —
        a degraded platform must degrade as far as it can.
        """
        mode = self.mode(name)
        if name in self.active:
            return False
        for app, node in mode.stop_apps:
            self._try(self.platform.stop_app, app, node)
        for app, node in mode.start_apps:
            self._try(self._start, app, node)
        event = DegradationEvent(
            time=self.sim.now, mode=name, action="enter",
            trigger=trigger, fault_rate=fault_rate,
        )
        self.active[name] = event
        self.events.append(event)
        self.entries += 1
        self._m_enter.inc()
        self.sim.trace("platform.degradation", mode=name, action="enter", trigger=trigger)
        return True

    def exit(self, name: str, *, trigger: str = "manual", fault_rate: float = 0.0) -> bool:
        """Release an active mode, restoring the shed apps."""
        mode = self.mode(name)
        if name not in self.active:
            return False
        for app, node in mode.start_apps:
            self._try(self.platform.stop_app, app, node)
        for app, node in mode.stop_apps:
            self._try(self._start, app, node)
        del self.active[name]
        event = DegradationEvent(
            time=self.sim.now, mode=name, action="exit",
            trigger=trigger, fault_rate=fault_rate,
        )
        self.events.append(event)
        self.exits += 1
        self._m_exit.inc()
        self.sim.trace("platform.degradation", mode=name, action="exit", trigger=trigger)
        return True

    def _try(self, action, app: str, node: str) -> None:
        try:
            action(app, node)
        except (AdmissionError, PlatformError):
            self.skipped_actions += 1

    def _start(self, app: str, node: str) -> None:
        # a previously shed app leaves its stopped instance on the node;
        # restart it in place rather than instantiating a duplicate
        for instance in self.platform.node(node).instances_of(app):
            if instance.state is AppState.STOPPED:
                instance.start()
                return
        self.platform.start_app(app, node)

    # -- automatic activation ---------------------------------------------

    def watch(
        self,
        monitor: "RuntimeMonitor",
        mode_name: str,
        *,
        fault_rate_threshold: float,
        window: float = 0.05,
        recovery_factor: float = 0.5,
    ) -> None:
        """Drive a mode from a monitor's observed fault rate.

        Every ``window`` seconds the fault rate (new fault records per
        second) is sampled; the mode is entered when it reaches
        ``fault_rate_threshold`` and exited once it falls to
        ``recovery_factor * fault_rate_threshold`` or below (hysteresis).
        """
        self.mode(mode_name)  # validate early
        if fault_rate_threshold <= 0 or window <= 0:
            raise PlatformError("fault-rate threshold and window must be positive")
        if not 0.0 <= recovery_factor <= 1.0:
            raise PlatformError("recovery factor must be within [0, 1]")
        watch = _Watch(
            monitor=monitor,
            mode=mode_name,
            enter_rate=fault_rate_threshold,
            exit_rate=recovery_factor * fault_rate_threshold,
            window=window,
            last_fault_count=len(monitor.faults),
        )
        self.sim.schedule(window, self._sample, watch)

    def _sample(self, watch: _Watch) -> None:
        count = len(watch.monitor.faults)
        rate = (count - watch.last_fault_count) / watch.window
        watch.last_fault_count = count
        if watch.mode not in self.active:
            if rate >= watch.enter_rate:
                self.enter(watch.mode, trigger="fault_rate", fault_rate=rate)
        elif rate <= watch.exit_rate:
            active_event = self.active[watch.mode]
            if active_event.trigger == "fault_rate":
                self.exit(watch.mode, trigger="fault_rate", fault_rate=rate)
        self.sim.schedule(watch.window, self._sample, watch)
