"""The dynamic platform — the paper's core contribution (Figure 2).

Hosts deterministic and non-deterministic applications side by side with
freedom of interference, staged runtime updates, redundancy/fail-
operational support, runtime monitoring, admission control and
cloud-based schedule management.
"""

from .admission import AdmissionController, AdmissionDecision
from .application import AppInstance, AppState
from .campaign import (
    CampaignJob,
    CampaignManager,
    CampaignOutcome,
    CampaignResult,
    CampaignSpec,
    Fleet,
    SweepResult,
    Vehicle,
    WaveResult,
    plan_waves,
    sweep_campaigns,
)
from .bus_admission import (
    BUS_HEADROOM_LIMIT,
    BusAdmissionDecision,
    BusLoadTracker,
    admit_communication,
    offered_load_of,
)
from .degradation import (
    DegradationController,
    DegradationEvent,
    DegradationMode,
)
from .monitor import BackendLink, FaultRecord, RuntimeMonitor, TaskStats
from .node import PlatformNode
from .platform import DynamicPlatform
from .reconfiguration import (
    MIGRATION_HANDOVER_LATENCY,
    MigrationReport,
    ReconfigurationManager,
)
from .redundancy import (
    FailoverEvent,
    PROMOTION_LATENCY,
    RedundancyManager,
    ReplicaSet,
)
from .schedule_mgmt import (
    ComputeSite,
    ScheduleManagementFramework,
    SynthesisOutcome,
    validate_by_simulation,
)
from .services import (
    DIAGNOSIS_SERVICE_ID,
    DiagnosisService,
    DiagnosticTroubleCode,
    LOGGING_SERVICE_ID,
    LogRecord,
    LoggingService,
    PERSISTENCE_SERVICE_ID,
    PersistenceService,
)
from .update import (
    FLASH_WRITE_RATE,
    REDIRECT_LATENCY,
    STATE_SYNC_RATE,
    UpdateOrchestrator,
    UpdateReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AppInstance",
    "AppState",
    "BUS_HEADROOM_LIMIT",
    "BackendLink",
    "BusAdmissionDecision",
    "BusLoadTracker",
    "CampaignJob",
    "CampaignManager",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignSpec",
    "Fleet",
    "SweepResult",
    "Vehicle",
    "WaveResult",
    "admit_communication",
    "offered_load_of",
    "plan_waves",
    "sweep_campaigns",
    "ComputeSite",
    "DIAGNOSIS_SERVICE_ID",
    "DegradationController",
    "DegradationEvent",
    "DegradationMode",
    "DiagnosisService",
    "DiagnosticTroubleCode",
    "DynamicPlatform",
    "FLASH_WRITE_RATE",
    "FailoverEvent",
    "FaultRecord",
    "LOGGING_SERVICE_ID",
    "LogRecord",
    "LoggingService",
    "MIGRATION_HANDOVER_LATENCY",
    "MigrationReport",
    "PERSISTENCE_SERVICE_ID",
    "PROMOTION_LATENCY",
    "PersistenceService",
    "PlatformNode",
    "REDIRECT_LATENCY",
    "ReconfigurationManager",
    "RedundancyManager",
    "ReplicaSet",
    "RuntimeMonitor",
    "STATE_SYNC_RATE",
    "ScheduleManagementFramework",
    "SynthesisOutcome",
    "TaskStats",
    "UpdateOrchestrator",
    "UpdateReport",
    "validate_by_simulation",
]
