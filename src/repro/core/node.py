"""Per-ECU runtime of the dynamic platform.

A :class:`PlatformNode` bundles everything one ECU contributes to the
platform: its cores (running the mixed-criticality policy of DESIGN.md
decision D1), its memory manager, its middleware endpoint and its
installed images.  The :class:`~repro.core.platform.DynamicPlatform`
coordinates nodes into the vehicle-wide platform of Figure 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError, PlatformError
from ..hw.ecu import EcuSpec, EcuState
from ..middleware.endpoint import Endpoint
from ..middleware.registry import ServiceRegistry
from ..network.gateway import VehicleNetwork
from ..osal.core import Core
from ..osal.memory import MemoryManager
from ..osal.policies import BudgetServer, MixedCriticalityPolicy
from ..sim import Simulator
from .application import AppInstance, AppState


class PlatformNode:
    """One ECU participating in the dynamic platform."""

    def __init__(
        self,
        sim: Simulator,
        spec: EcuSpec,
        network: VehicleNetwork,
        registry: ServiceRegistry,
        *,
        nda_budget_share: Optional[float] = 0.3,
        nda_budget_period: float = 0.01,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.state = EcuState(spec)
        self.memory = MemoryManager(self.state)
        self.endpoint = Endpoint(sim, network, spec.name, registry)
        self.cores: List[Core] = []
        for index in range(spec.cores):
            if nda_budget_share is not None:
                server = BudgetServer(
                    capacity=nda_budget_share * nda_budget_period,
                    period=nda_budget_period,
                )
            else:
                server = None
            policy = MixedCriticalityPolicy(server=server)
            self.cores.append(
                Core(sim, f"{spec.name}.core{index}", spec.speed_factor, policy)
            )
        self.instances: Dict[str, AppInstance] = {}
        self._installed_images: Dict[str, float] = {}
        self.failed = False

    @property
    def name(self) -> str:
        return self.spec.name

    # -- image management -----------------------------------------------------------

    def store_image(self, app_name: str, image_kib: float) -> None:
        """Persist an application image in flash."""
        if app_name in self._installed_images:
            # replacing an image: free the old one first
            self.state.free_flash(self._installed_images[app_name])
        self.state.allocate_flash(image_kib)
        self._installed_images[app_name] = image_kib

    def drop_image(self, app_name: str) -> None:
        size = self._installed_images.pop(app_name, None)
        if size is not None:
            self.state.free_flash(size)

    def has_image(self, app_name: str) -> bool:
        return app_name in self._installed_images

    # -- instances --------------------------------------------------------------------

    def instantiate(
        self, model, *, core_index: int = 0, instance_id: int = 1
    ) -> AppInstance:
        """Create (but do not start) an app instance on a core.

        Allocates the app's RAM in its own process (or a shared one when
        the model allows combining, per Section 3.1 Memory).
        """
        if self.failed:
            raise PlatformError(f"node {self.name} has failed")
        if not 0 <= core_index < len(self.cores):
            raise ConfigurationError(
                f"{self.name}: core {core_index} out of range"
            )
        key = f"{model.name}#{instance_id}"
        if key in self.instances:
            raise PlatformError(f"{key} already instantiated on {self.name}")
        process_name = key if model.own_process else "shared_pool"
        if model.own_process or process_name not in {
            p.name for p in self.memory.processes
        }:
            self.memory.spawn(
                process_name if model.own_process else process_name,
                model.memory_kib,
                resident=model.name,
            )
        else:
            self.memory.process(process_name).add_resident(model.name)
            self.state.allocate_memory(model.memory_kib)
        instance = AppInstance(
            self.sim,
            model,
            self.name,
            self.cores[core_index],
            instance_id=instance_id,
            process_name=process_name,
        )
        self.instances[key] = instance
        return instance

    def tear_down(self, app_name: str, instance_id: int = 1) -> None:
        """Remove an instance, releasing its process memory."""
        key = f"{app_name}#{instance_id}"
        instance = self.instances.pop(key, None)
        if instance is None:
            raise PlatformError(f"{key} is not instantiated on {self.name}")
        if instance.state is AppState.RUNNING:
            instance.stop()
        if instance.model.own_process:
            self.memory.kill(instance.process_name)
        else:
            self.memory.process(instance.process_name).remove_resident(app_name)
            self.state.free_memory(instance.model.memory_kib)

    def instance(self, app_name: str, instance_id: int = 1) -> AppInstance:
        key = f"{app_name}#{instance_id}"
        try:
            return self.instances[key]
        except KeyError:
            raise PlatformError(
                f"{key} is not instantiated on {self.name}"
            ) from None

    def instances_of(self, app_name: str) -> List[AppInstance]:
        return [
            inst
            for key, inst in self.instances.items()
            if inst.model.name == app_name
        ]

    # -- load accounting ----------------------------------------------------------------

    def deterministic_tasks_on_core(self, core_index: int) -> List:
        """Deterministic tasks of running/starting instances on a core."""
        from ..osal.task import Criticality

        tasks = []
        for instance in self.instances.values():
            if instance.core is not self.cores[core_index]:
                continue
            if instance.state in (AppState.RUNNING, AppState.STARTING):
                tasks.extend(
                    t
                    for t in instance.model.tasks
                    if t.criticality is Criticality.DETERMINISTIC
                )
        return tasks

    def memory_headroom_kib(self) -> float:
        return self.state.memory_free_kib

    # -- failure ---------------------------------------------------------------------------

    def fail(self) -> List[AppInstance]:
        """ECU failure: halt cores, crash instances, detach from network.

        Returns the instances that were running when the node died.
        """
        self.failed = True
        self.state.fail(self.sim.now)
        victims = [
            inst
            for inst in self.instances.values()
            if inst.state in (AppState.RUNNING, AppState.STARTING)
        ]
        for core in self.cores:
            core.halt()
        for instance in victims:
            instance.fail("node failure")
        self.endpoint.detach()
        self.endpoint.registry.withdraw_all_of_ecu(self.name)
        self.sim.trace("node.failed", node=self.name)
        return victims

    def recover(self) -> None:
        """Bring the node back empty (instances must be re-installed)."""
        self.failed = False
        self.state.recover()
        for core in self.cores:
            core.resume()
        self.endpoint.reattach()
        self.sim.trace("node.recovered", node=self.name)
