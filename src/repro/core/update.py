"""Update orchestration (Section 3.2).

Three strategies, matching the paper's discussion:

* :meth:`UpdateOrchestrator.staged_update` — the paper's proposal for
  deterministic applications: (1) start the new version in parallel,
  (2) synchronise internal state, (3) redirect traffic, (4) stop the old
  version.  Costs double resources while in flight (the paper's stated
  disadvantage, measured by benchmark C5) but keeps the function
  available throughout.
* :meth:`UpdateOrchestrator.stop_update_restart` — the simple strategy
  that is acceptable for non-deterministic applications: stop, swap the
  image, restart.  The function is down for the whole swap.
* :meth:`UpdateOrchestrator.naive_switch` — the baseline the paper warns
  about: a centrally organised switchover at an agreed instant, which
  "requires high accuracy clock synchronization and a single point of
  failure is created".  Clock skew between the stop and start commands
  opens a visible service gap (or double-running overlap).

:meth:`UpdateOrchestrator.update_path` chains staged updates over a set
of dependent applications, verifying each intermediate step before
proceeding (the paper's distributed update paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import UpdateError
from ..security.package import SoftwarePackage
from ..sim import Signal, Simulator
from .application import AppInstance, AppState
from .platform import DynamicPlatform

#: Throughput of instance-state synchronisation (bytes/second).
STATE_SYNC_RATE = 10_000_000.0

#: Time to redirect service bindings to the new instance.
REDIRECT_LATENCY = 0.001

#: Flash-write throughput for image swaps (bytes/second).
FLASH_WRITE_RATE = 2_000_000.0


@dataclass
class UpdateReport:
    """Measured outcome of one update operation."""

    app: str
    strategy: str
    started_at: float
    finished_at: float = 0.0
    downtime: float = 0.0
    peak_extra_memory_kib: float = 0.0
    success: bool = False
    failure_reason: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class UpdateOrchestrator:
    """Coordinates application updates on a :class:`DynamicPlatform`."""

    def __init__(self, platform: DynamicPlatform) -> None:
        self.platform = platform
        self.sim: Simulator = platform.sim
        self.reports: List[UpdateReport] = []

    # -- staged (paper proposal) ----------------------------------------------------

    def staged_update(
        self,
        app_name: str,
        node_name: str,
        package: SoftwarePackage,
        *,
        startup_latency: float = 0.01,
    ) -> Signal:
        """Zero-downtime update of a (deterministic) application.

        The returned signal fires with the :class:`UpdateReport`.
        """
        node = self.platform.node(node_name)
        old = self._running_instance(node, app_name)
        report = UpdateReport(
            app=app_name, strategy="staged", started_at=self.sim.now,
            peak_extra_memory_kib=package.app.memory_kib,
        )
        result = self.sim.signal(name=f"update.{app_name}")

        def fail(reason: str) -> None:
            report.success = False
            report.failure_reason = reason
            report.finished_at = self.sim.now
            self.reports.append(report)
            result.fire(report)

        def step1_installed(ok: bool) -> None:
            if not ok:
                fail("package verification failed")
                return
            # (1) start the new version in parallel
            try:
                new = node.instantiate(
                    self.platform.models[app_name],
                    core_index=node.cores.index(old.core),
                    instance_id=old.instance_id + 1,
                )
            except Exception as exc:  # noqa: BLE001 - surfaced in report
                fail(f"parallel instantiation failed: {exc}")
                return
            new.start(startup_latency=startup_latency)
            sync_time = old.state_size_bytes() / STATE_SYNC_RATE
            self.sim.schedule(
                startup_latency + sync_time, step2_synced, new
            )

        def step2_synced(new: AppInstance) -> None:
            # (2) synchronise internal state
            new.adopt_state(old.snapshot_state())
            # (3) redirect all traffic to the new instance
            self.sim.schedule(REDIRECT_LATENCY, step3_redirected, new)

        def step3_redirected(new: AppInstance) -> None:
            self._redirect_offers(app_name, node_name, new.instance_id)
            # (4) stop the old version
            old.stop()
            node.tear_down(app_name, old.instance_id)
            report.success = True
            report.downtime = 0.0
            report.finished_at = self.sim.now
            self.reports.append(report)
            self.sim.trace(
                "update.staged_done", app=app_name, node=node_name,
                duration=report.duration,
            )
            result.fire(report)

        self.platform.install(package, node_name).add_callback(step1_installed)
        return result

    @staticmethod
    def _running_instance(node, app_name: str) -> AppInstance:
        """The currently running instance of an app on a node."""
        candidates = [
            inst
            for inst in node.instances_of(app_name)
            if inst.state is AppState.RUNNING
        ]
        if not candidates:
            raise UpdateError(
                f"{app_name} is not running on {node.name}"
            )
        return max(candidates, key=lambda i: i.instance_id)

    def _redirect_offers(
        self, app_name: str, node_name: str, new_instance_id: int
    ) -> None:
        """Point service offers of the app at the new instance."""
        registry = self.platform.registry
        for offer in list(registry.offers):
            if offer.provider_app == app_name and offer.ecu == node_name:
                registry.withdraw(offer.service_id, offer.instance_id)
                from ..middleware.registry import ServiceOffer

                registry.offer(
                    ServiceOffer(
                        service_id=offer.service_id,
                        instance_id=offer.instance_id,
                        ecu=node_name,
                        provider_app=app_name,
                        version=offer.version,
                    )
                )

    # -- stop/update/restart (NDA strategy) -----------------------------------------

    def stop_update_restart(
        self,
        app_name: str,
        node_name: str,
        package: SoftwarePackage,
        *,
        startup_latency: float = 0.01,
    ) -> Signal:
        """Take the app down, swap the image, restart.

        Fine for non-deterministic applications ("their impact might be
        limited to user experience"); measures the downtime it causes.
        """
        node = self.platform.node(node_name)
        old = self._running_instance(node, app_name)
        report = UpdateReport(
            app=app_name, strategy="stop_update_restart",
            started_at=self.sim.now,
        )
        result = self.sim.signal(name=f"update.{app_name}")
        down_since = self.sim.now
        # (1) stop
        old.stop()
        node.tear_down(app_name, old.instance_id)
        flash_time = package.image_kib * 1024.0 / FLASH_WRITE_RATE

        def after_verify(ok: bool) -> None:
            if not ok:
                report.success = False
                report.failure_reason = "package verification failed"
                report.finished_at = self.sim.now
                self.reports.append(report)
                result.fire(report)
                return
            self.sim.schedule(flash_time, restart)

        def restart() -> None:
            instance = self.platform.start_app(
                app_name, node_name, instance_id=1,
                startup_latency=startup_latency,
            )
            self.sim.schedule(startup_latency, finish, instance)

        def finish(instance: AppInstance) -> None:
            report.success = True
            report.downtime = self.sim.now - down_since
            report.finished_at = self.sim.now
            self.reports.append(report)
            result.fire(report)

        # (2) verify + flash the new image
        self.platform.install(package, node_name).add_callback(after_verify)
        return result

    # -- naive synchronized switch (baseline) ------------------------------------------

    def naive_switch(
        self,
        app_name: str,
        node_name: str,
        package: SoftwarePackage,
        *,
        switch_at: float,
        clock_skew: float = 0.0,
        startup_latency: float = 0.01,
    ) -> Signal:
        """Centrally coordinated cut-over at ``switch_at``.

        The stop command executes at ``switch_at``; the start command at
        ``switch_at + clock_skew`` (skew between the two clocks involved).
        Positive skew opens a service gap of ``skew + startup_latency``;
        even zero skew leaves the startup latency as a gap — the staged
        strategy hides both.
        """
        if switch_at < self.sim.now:
            raise UpdateError("switch time already passed")
        node = self.platform.node(node_name)
        report = UpdateReport(
            app=app_name, strategy="naive_switch", started_at=self.sim.now,
        )
        result = self.sim.signal(name=f"update.{app_name}")

        def do_install(ok: bool) -> None:
            if not ok:
                report.success = False
                report.failure_reason = "package verification failed"
                report.finished_at = self.sim.now
                self.reports.append(report)
                result.fire(report)
                return
            self.sim.at(switch_at, do_stop)
            self.sim.at(max(switch_at + clock_skew, self.sim.now), do_start)

        down_marker = [0.0]

        def do_stop() -> None:
            old = self._running_instance(node, app_name)
            old.stop()
            node.tear_down(app_name, old.instance_id)
            down_marker[0] = self.sim.now

        def do_start() -> None:
            instance = self.platform.start_app(
                app_name, node_name, instance_id=1,
                startup_latency=startup_latency,
            )
            self.sim.schedule(startup_latency, finish)

        def finish() -> None:
            report.success = True
            report.downtime = self.sim.now - down_marker[0]
            report.finished_at = self.sim.now
            self.reports.append(report)
            result.fire(report)

        self.platform.install(package, node_name).add_callback(do_install)
        return result

    # -- distributed update paths ----------------------------------------------------------

    def update_path(
        self,
        steps: List[tuple],
        *,
        verify_step: Optional[Callable[[str], bool]] = None,
        startup_latency: float = 0.01,
    ) -> Signal:
        """Staged-update several dependent apps one at a time.

        ``steps`` is a list of ``(app_name, node_name, package)``.  After
        each step, ``verify_step(app_name)`` is consulted (e.g. a runtime
        monitor check); a failing verification aborts the remaining path —
        "by verifying the safety of every intermediate update step, the
        safety of the complete update can be ensured".

        The signal fires with the list of per-step reports.
        """
        result = self.sim.signal(name="update.path")
        reports: List[UpdateReport] = []

        def run_step(index: int) -> None:
            if index >= len(steps):
                result.fire(reports)
                return
            app_name, node_name, package = steps[index]

            def done(report: UpdateReport) -> None:
                reports.append(report)
                if not report.success:
                    result.fire(reports)
                    return
                if verify_step is not None and not verify_step(app_name):
                    report.failure_reason = "intermediate verification failed"
                    result.fire(reports)
                    return
                run_step(index + 1)

            self.staged_update(
                app_name, node_name, package, startup_latency=startup_latency
            ).add_callback(done)

        run_step(0)
        return result
