"""Runtime monitoring (Section 3.4).

"Such monitoring capabilities need to especially target the key
parameters of deterministic applications, such as period, deadline,
jitter, memory usage, etc.  With such monitoring capabilities, faults can
easily be detected, the conditions leading to such faults recorded and,
if an internet connection is available, be transferred to the
manufacturer for further examinations."

The monitor subscribes to the simulator's trace stream (``os.release`` /
``os.done``), keeps per-task statistics, raises :class:`FaultRecord`
objects on violations, and ships them to a :class:`BackendLink` when one
is attached.  It also exposes the aggregate statistics that "efficiently
support the safety certification processes".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..osal.task import TaskSpec
from ..sim import Simulator, TraceEntry


@dataclass
class TaskStats:
    """Running statistics for one monitored task.

    Scalar aggregates live here; distribution statistics (response-time
    and jitter quantiles) live in the simulator's metrics registry as
    streaming histograms, referenced by :attr:`response_hist` and
    :attr:`jitter_hist`.
    """

    spec: TaskSpec
    releases: int = 0
    completions: int = 0
    deadline_misses: int = 0
    jitter_violations: int = 0
    max_response: float = 0.0
    max_jitter: float = 0.0
    last_release: Optional[float] = None
    max_period_drift: float = 0.0
    response_hist: Optional[object] = None
    jitter_hist: Optional[object] = None

    @property
    def miss_ratio(self) -> float:
        if self.completions == 0:
            return 0.0
        return self.deadline_misses / self.completions


@dataclass(frozen=True)
class FaultRecord:
    """One detected violation, with the conditions that led to it."""

    time: float
    task: str
    kind: str  # "deadline" | "jitter" | "period" | "memory"
    detail: str


class BackendLink:
    """Models the (optional) internet connection to the manufacturer."""

    def __init__(self, sim: Simulator, *, uplink_latency: float = 0.2) -> None:
        self.sim = sim
        self.uplink_latency = uplink_latency
        self.received: List[FaultRecord] = []
        self.connected = True

    def ship(self, record: FaultRecord) -> None:
        if not self.connected:
            return
        self.sim.schedule(self.uplink_latency, self.received.append, record)


class RuntimeMonitor:
    """Watches deterministic task behaviour through the trace stream."""

    def __init__(
        self,
        sim: Simulator,
        *,
        backend: Optional[BackendLink] = None,
        period_drift_tolerance: float = 0.1,
        core_prefix: str = "",
        backlog_limit: int = 256,
    ) -> None:
        """``core_prefix`` scopes the monitor to cores whose names start
        with it — required when several vehicles (or platforms) share one
        simulation and tracer.  ``backlog_limit`` bounds the fault records
        buffered while no backend link is attached (or the link is down);
        the oldest records are evicted first once the buffer is full."""
        self.sim = sim
        self.backend = backend
        self.period_drift_tolerance = period_drift_tolerance
        self.core_prefix = core_prefix
        self.metrics = sim.metrics
        self._watched: Dict[str, TaskStats] = {}
        self.faults: List[FaultRecord] = []
        self._backlog: Deque[FaultRecord] = deque(maxlen=backlog_limit)
        self.backlog_dropped = 0
        self.trace_events_processed = 0
        self._m_faults = {
            kind: self.metrics.counter("monitor.faults", kind=kind)
            for kind in ("deadline", "jitter", "period", "memory")
        }
        sim.tracer.subscribe(self._on_trace)

    # -- configuration ---------------------------------------------------------

    def watch(self, task: TaskSpec) -> TaskStats:
        """Start monitoring a task (idempotent)."""
        if task.name not in self._watched:
            self._watched[task.name] = TaskStats(
                spec=task,
                response_hist=self.metrics.histogram(
                    "monitor.response", task=task.name
                ),
                jitter_hist=self.metrics.histogram(
                    "monitor.jitter", task=task.name
                ),
            )
        return self._watched[task.name]

    def unwatch(self, task_name: str) -> None:
        self._watched.pop(task_name, None)

    def stats(self, task_name: str) -> TaskStats:
        return self._watched[task_name]

    @property
    def watched_tasks(self) -> List[str]:
        return list(self._watched)

    # -- trace ingestion -----------------------------------------------------------

    def _on_trace(self, entry: TraceEntry) -> None:
        if entry.category not in ("os.release", "os.done"):
            return
        if self.core_prefix and not str(entry.get("core", "")).startswith(
            self.core_prefix
        ):
            return
        if entry.category == "os.release":
            self._on_release(entry)
        else:
            self._on_done(entry)

    def _on_release(self, entry: TraceEntry) -> None:
        stats = self._watched.get(entry["task"])
        if stats is None:
            return
        self.trace_events_processed += 1
        stats.releases += 1
        if stats.last_release is not None:
            observed_period = entry.time - stats.last_release
            drift = abs(observed_period - stats.spec.period) / stats.spec.period
            stats.max_period_drift = max(stats.max_period_drift, drift)
            if drift > self.period_drift_tolerance:
                self._fault(
                    entry.time,
                    stats.spec.name,
                    "period",
                    f"observed period {observed_period:.6f}s deviates "
                    f"{drift:.1%} from nominal {stats.spec.period:.6f}s",
                )
        stats.last_release = entry.time

    def _on_done(self, entry: TraceEntry) -> None:
        stats = self._watched.get(entry["task"])
        if stats is None:
            return
        self.trace_events_processed += 1
        stats.completions += 1
        response = entry["response"]
        jitter = entry["jitter"]
        stats.max_response = max(stats.max_response, response)
        stats.max_jitter = max(stats.max_jitter, jitter)
        if stats.response_hist is not None:
            stats.response_hist.observe(response)
        if stats.jitter_hist is not None:
            stats.jitter_hist.observe(jitter)
        if entry["missed"]:
            stats.deadline_misses += 1
            self._fault(
                entry.time,
                stats.spec.name,
                "deadline",
                f"response {response:.6f}s exceeded deadline "
                f"{stats.spec.effective_deadline:.6f}s",
            )
        if jitter > stats.spec.jitter_tolerance:
            stats.jitter_violations += 1
            self._fault(
                entry.time,
                stats.spec.name,
                "jitter",
                f"start jitter {jitter:.6f}s exceeded tolerance "
                f"{stats.spec.jitter_tolerance:.6f}s",
            )

    # -- memory polling ----------------------------------------------------------------

    def check_memory(self, node, limit_fraction: float = 0.95) -> Optional[FaultRecord]:
        """Poll a node's memory occupancy against a high-water mark."""
        spec = node.spec
        used = node.state.memory_used_kib
        if used > spec.memory_kib * limit_fraction:
            return self._fault(
                self.sim.now,
                spec.name,
                "memory",
                f"{used:g} KiB of {spec.memory_kib:g} KiB in use",
            )
        return None

    # -- fault handling -----------------------------------------------------------------

    def attach_backend(self, backend: BackendLink) -> None:
        """Attach (or replace) the backend link and flush buffered faults."""
        self.backend = backend
        self.flush_backlog()

    def flush_backlog(self) -> int:
        """Ship buffered fault records if the link is up. Returns count."""
        backend = self.backend
        if backend is None or not backend.connected:
            return 0
        flushed = 0
        while self._backlog:
            backend.ship(self._backlog.popleft())
            flushed += 1
        return flushed

    @property
    def backlog_size(self) -> int:
        return len(self._backlog)

    def _fault(self, time: float, task: str, kind: str, detail: str) -> FaultRecord:
        record = FaultRecord(time=time, task=task, kind=kind, detail=detail)
        self.faults.append(record)
        counter = self._m_faults.get(kind)
        if counter is None:
            counter = self._m_faults[kind] = self.metrics.counter(
                "monitor.faults", kind=kind
            )
        counter.inc()
        backend = self.backend
        if backend is not None and backend.connected:
            # drain anything buffered during an outage first, preserving
            # the original detection order on the uplink
            if self._backlog:
                self.flush_backlog()
            backend.ship(record)
        else:
            # no link (or link down): buffer in a bounded deque instead of
            # silently dropping; oldest records are evicted on overflow
            if (
                self._backlog.maxlen is not None
                and len(self._backlog) == self._backlog.maxlen
            ):
                self.backlog_dropped += 1
            self._backlog.append(record)
        return record

    def faults_of_kind(self, kind: str) -> List[FaultRecord]:
        return [f for f in self.faults if f.kind == kind]

    def certification_report(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per-task evidence for safety certification.

        Quantile columns come straight from the streaming histograms in
        the metrics registry (no trace rescans), so the report stays O(1)
        in trace length.  They are zero when metrics were disabled.
        """
        report = {}
        for name, stats in self._watched.items():
            row = {
                "releases": stats.releases,
                "completions": stats.completions,
                "miss_ratio": stats.miss_ratio,
                "max_response": stats.max_response,
                "max_jitter": stats.max_jitter,
                "max_period_drift": stats.max_period_drift,
                "response_p50": 0.0,
                "response_p95": 0.0,
                "response_p99": 0.0,
            }
            hist = stats.response_hist
            if hist is not None and hist.count:
                row["response_p50"] = hist.quantile(0.50)
                row["response_p95"] = hist.quantile(0.95)
                row["response_p99"] = hist.quantile(0.99)
            report[name] = row
        return report
