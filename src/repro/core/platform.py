"""The dynamic platform (Figure 2): the paper's core contribution.

The :class:`DynamicPlatform` spans the platform-capable ECUs of a
topology and offers the app-store-like API the paper envisions:

* **install** — verify the signed package (delegating to an update
  master when the target ECU lacks crypto), store the image;
* **start** — run admission control, instantiate, start;
* **stop / uninstall** — the reverse;
* hooks for the update orchestrator, redundancy manager and runtime
  monitor, which live in their own modules.

Freedom of interference is provided by construction: each node's cores
run the mixed-criticality policy (CPU), each app gets its own process
(memory, MMU permitting), and deterministic traffic is mapped to
protected bus mechanisms by the middleware QoS (communication).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import AdmissionError, PlatformError, SecurityError
from ..hw.topology import Topology
from ..middleware.registry import ServiceRegistry
from ..model.applications import AppModel
from ..network.gateway import VehicleNetwork
from ..security.crypto import TrustStore
from ..security.package import PackageVerifier, SoftwarePackage
from ..security.update_master import UpdateMaster, UpdateMasterGroup
from ..sim import Signal, Simulator
from .admission import AdmissionController
from .application import AppInstance, AppState
from .degradation import DegradationController
from .node import PlatformNode


class DynamicPlatform:
    """Vehicle-wide dynamic platform over a set of ECUs."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        node_names: Optional[List[str]] = None,
        nda_budget_share: Optional[float] = 0.3,
        trust_store: Optional[TrustStore] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.network = VehicleNetwork(sim, topology)
        self.registry = ServiceRegistry()
        self.trust_store = trust_store or TrustStore()
        self.admission = AdmissionController(nda_budget_share=nda_budget_share)
        self.nodes: Dict[str, PlatformNode] = {}
        names = node_names or [e.name for e in topology.ecus]
        for name in names:
            spec = topology.ecu(name)
            self.nodes[name] = PlatformNode(
                sim,
                spec,
                self.network,
                self.registry,
                nda_budget_share=nda_budget_share,
            )
        self._verifiers: Dict[str, PackageVerifier] = {}
        self.update_masters: Optional[UpdateMasterGroup] = None
        self.models: Dict[str, AppModel] = {}
        self.installs_rejected = 0
        #: declared degradation modes (limp-home app sets etc.)
        self.degradation = DegradationController(self)

    # -- plumbing ---------------------------------------------------------------

    def node(self, name: str) -> PlatformNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise PlatformError(f"{name!r} is not a platform node") from None

    def verifier_for(self, node_name: str) -> PackageVerifier:
        if node_name not in self._verifiers:
            self._verifiers[node_name] = PackageVerifier(
                self.sim, self.node(node_name).spec, self.trust_store
            )
        return self._verifiers[node_name]

    def setup_update_masters(self, node_names: List[str]) -> UpdateMasterGroup:
        """Designate redundant update masters (Section 4.1)."""
        masters = [
            UpdateMaster(
                self.sim,
                self.node(name).endpoint,
                self.node(name).spec,
                self.trust_store,
            )
            for name in node_names
        ]
        self.update_masters = UpdateMasterGroup(masters)
        return self.update_masters

    # -- install ------------------------------------------------------------------

    def install(self, package: SoftwarePackage, node_name: str) -> Signal:
        """Verify and store a package on a node.

        The returned signal fires with ``True`` on success.  Weak ECUs
        (no crypto) delegate verification and transfer to the update
        master group; packages failing verification are rejected and
        never stored.
        """
        node = self.node(node_name)
        result = self.sim.signal(name=f"install.{package.app.name}")
        verifier = self.verifier_for(node_name)

        def complete(ok: bool) -> None:
            if ok:
                node.store_image(package.app.name, package.image_kib)
                self.models[package.app.name] = package.app
            else:
                self.installs_rejected += 1
            self.sim.trace(
                "platform.install",
                app=package.app.name,
                node=node_name,
                ok=ok,
            )
            result.fire(ok)

        if verifier.can_verify:
            verifier.verify(package).add_callback(complete)
        else:
            if self.update_masters is None:
                raise SecurityError(
                    f"{node_name} cannot verify packages and no update "
                    "master is configured"
                )
            self.update_masters.administer_install(
                package, node_name
            ).add_callback(complete)
        return result

    # -- lifecycle -------------------------------------------------------------------

    def start_app(
        self,
        app_name: str,
        node_name: str,
        *,
        core_index: Optional[int] = None,
        instance_id: int = 1,
        startup_latency: float = 0.0,
    ) -> AppInstance:
        """Admission-check, instantiate and start an installed app.

        Raises:
            AdmissionError: if the admission battery rejects the app.
            PlatformError: if the app was never installed on the node.
        """
        node = self.node(node_name)
        if not node.has_image(app_name):
            raise PlatformError(
                f"{app_name!r} has no installed image on {node_name}"
            )
        model = self.models[app_name]
        if core_index is None:
            decision = self.admission.best_core(node, model)
            if decision is None:
                decision = self.admission.test(node, model, 0)
        else:
            decision = self.admission.test(node, model, core_index)
        if not decision:
            raise AdmissionError(
                f"{app_name} rejected on {node_name}: "
                + "; ".join(decision.reasons)
            )
        instance = node.instantiate(
            model, core_index=decision.core_index, instance_id=instance_id
        )
        instance.start(startup_latency=startup_latency)
        return instance

    def stop_app(self, app_name: str, node_name: str, instance_id: int = 1) -> None:
        """Stop a running instance (keeps the image installed)."""
        instance = self.node(node_name).instance(app_name, instance_id)
        instance.stop()

    def uninstall(self, app_name: str, node_name: str) -> None:
        """Remove all instances and the image of an app from a node."""
        node = self.node(node_name)
        for instance in list(node.instances_of(app_name)):
            node.tear_down(app_name, instance.instance_id)
        node.drop_image(app_name)

    # -- queries --------------------------------------------------------------------

    def running_instances(self, app_name: Optional[str] = None) -> List[AppInstance]:
        out = []
        for node in self.nodes.values():
            for instance in node.instances.values():
                if instance.state is not AppState.RUNNING:
                    continue
                if app_name is None or instance.model.name == app_name:
                    out.append(instance)
        return out

    def where_is(self, app_name: str) -> List[str]:
        """Node names currently hosting running instances of an app."""
        return sorted({i.node_name for i in self.running_instances(app_name)})

    def total_deterministic_misses(self) -> int:
        return sum(
            inst.deadline_misses() for inst in self.running_instances()
        )

    # -- failure injection -------------------------------------------------------------

    def fail_node(self, node_name: str) -> List[AppInstance]:
        """Inject an ECU failure; returns the instances that died."""
        return self.node(node_name).fail()

    def recover_node(self, node_name: str) -> None:
        self.node(node_name).recover()
