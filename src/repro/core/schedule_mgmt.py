"""Cloud-based schedule management (Section 3.1 CPU / ref [21]).

"Generating a new schedule at runtime is potentially computationally
expensive.  We propose to generate a schedule from the model and test
this schedule in simulations in the backend, also against the current
configuration of the installing vehicle."

:class:`ScheduleManagementFramework` synthesises time-triggered tables on
a chosen :class:`ComputeSite` (the OEM backend or the vehicle ECU itself),
charges the synthesis work to that site's compute rate, and — on the
backend — validates the table by actually *simulating* it against the
vehicle's task configuration before releasing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SchedulingError
from ..hw.ecu import EcuSpec
from ..osal.task import TaskSpec, hyperperiod
from ..osal.timetable import TimeTable, TimeTriggeredExecutive, synthesize_table
from ..osal.core import Core  # noqa: F401 - re-exported context
from ..sim import Signal, Simulator


@dataclass(frozen=True)
class ComputeSite:
    """Where synthesis runs and how fast it computes.

    ``rate`` is elementary placement steps per second.  The backend is a
    server farm; an ECU computes proportionally to its clock.
    """

    name: str
    rate: float

    @classmethod
    def backend(cls) -> "ComputeSite":
        return cls(name="backend", rate=50_000_000.0)

    @classmethod
    def on_ecu(cls, spec: EcuSpec) -> "ComputeSite":
        # ~500 placement steps per MHz-second: table synthesis is pointer
        # chasing, which embedded cores do poorly
        return cls(name=spec.name, rate=spec.cpu_mhz * 500.0)


@dataclass
class SynthesisOutcome:
    """Result of a synthesis request."""

    table: Optional[TimeTable]
    site: str
    synthesis_time: float
    validation_time: float
    validated: bool
    feasible: bool
    error: Optional[str] = None

    @property
    def total_time(self) -> float:
        return self.synthesis_time + self.validation_time


def validate_by_simulation(
    table: TimeTable, tasks: List[TaskSpec], speed_factor: float = 1.0
) -> bool:
    """Run the table in a throwaway simulation for two hyperperiods and
    check that no deterministic job misses its deadline.

    This is the backend's "test this schedule in simulations ... against
    the current configuration" step — a digital twin of the target ECU.
    """

    twin = Simulator()
    executive = TimeTriggeredExecutive(twin, "twin", table)

    from ..sim import PRIORITY_URGENT

    class _Feed:
        def __init__(self, sim, executive, task, speed):
            self.sim = sim
            self.executive = executive
            self.task = task
            self.scaled = task.wcet / speed
            self.k = 0
            sim.at(task.offset, self.release, priority=PRIORITY_URGENT)

        def release(self):
            from ..osal.task import Job

            job = Job(
                task=self.task,
                release_time=self.sim.now,
                absolute_deadline=self.sim.now + self.task.effective_deadline,
                remaining=self.scaled,
                job_id=self.sim.next_job_id(),
            )
            self.executive.submit(job)
            self.k += 1
            self.sim.at(
                self.task.offset + self.k * self.task.period,
                self.release,
                priority=PRIORITY_URGENT,
            )

    for task in tasks:
        _Feed(twin, executive, task, speed_factor)
    horizon = 2 * hyperperiod(tasks)
    twin.run(until=horizon)
    return all(not job.missed_deadline for job in executive.completed_jobs) and (
        len(executive.completed_jobs) > 0
    )


class ScheduleManagementFramework:
    """Synthesis requests against backend or on-ECU compute sites."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.outcomes: List[SynthesisOutcome] = []

    def synthesize(
        self,
        tasks: List[TaskSpec],
        site: ComputeSite,
        *,
        speed_factor: float = 1.0,
        validate: bool = True,
    ) -> Signal:
        """Request a table; the signal fires with a :class:`SynthesisOutcome`.

        Synthesis work is metered in placement steps and charged to the
        site's rate; backend requests additionally run the simulation
        validation (charged at 1/20 of the synthesis cost, dominated by
        the twin setup).
        """
        result = self.sim.signal(name=f"synth.{site.name}")
        work_steps: List[int] = []
        error: Optional[str] = None
        table: Optional[TimeTable] = None
        try:
            table = synthesize_table(
                tasks, speed_factor, work_factor_out=work_steps
            )
        except SchedulingError as exc:
            error = str(exc)
        steps = work_steps[0] if work_steps else len(tasks) * 10
        synthesis_time = steps / site.rate

        def finish() -> None:
            validated = False
            validation_time = 0.0
            if table is not None and validate and site.name == "backend":
                validated = validate_by_simulation(table, tasks, speed_factor)
                validation_time = synthesis_time / 20.0
            outcome = SynthesisOutcome(
                table=table,
                site=site.name,
                synthesis_time=synthesis_time,
                validation_time=validation_time,
                validated=validated,
                feasible=table is not None,
                error=error,
            )
            self.outcomes.append(outcome)
            self.sim.trace(
                "schedule.synthesized",
                site=site.name,
                feasible=outcome.feasible,
                time=outcome.total_time,
            )
            result.fire(outcome)

        self.sim.schedule(synthesis_time, finish)
        return result
