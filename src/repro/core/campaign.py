"""Fleet-level OTA campaigns with monitoring-driven rollback.

Section 3.4 closes the loop the campaign manager implements: faults
detected by runtime monitoring are "transferred to the manufacturer for
further examinations.  In turn, an update can be created and rolled out
to remedy the detected error."

:class:`Fleet` instantiates N simulated vehicles (each with its own
topology, dynamic platform, runtime monitor and backend uplink) inside
one simulation.  :class:`CampaignManager` rolls a package out in waves,
watching each wave's monitors before releasing the next — and aborting
plus rolling back to the previous version when the regression rate
crosses the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import UpdateError
from ..jobs import JobContext, SimJob
from ..hw.ecu import CryptoCapability, OsClass
from ..hw.topology import BusSpec, EcuSpec, Topology
from ..model.applications import AppModel
from ..osal.task import TaskSpec
from ..security.crypto import TrustStore
from ..security.package import build_package
from ..sim import Simulator
from .monitor import BackendLink, RuntimeMonitor
from .platform import DynamicPlatform
from .update import UpdateOrchestrator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import ParallelExecutor


def _vehicle_topology(index: int) -> Topology:
    topo = Topology(f"vehicle_{index}")
    topo.add_bus(BusSpec(f"eth_{index}", "ethernet", 1e9, tsn_capable=True))
    topo.add_ecu(EcuSpec(
        f"vecu_{index}", cpu_mhz=1000.0, cores=2, memory_kib=1 << 18,
        flash_kib=1 << 20, has_mmu=True, os_class=OsClass.POSIX_RT,
        crypto=CryptoCapability.ACCELERATED,
        ports=(("eth0", "ethernet"),),
    ))
    topo.attach(f"vecu_{index}", "eth0", f"eth_{index}")
    return topo


@dataclass
class Vehicle:
    """One fleet member: platform + monitor + uplink."""

    index: int
    platform: DynamicPlatform
    monitor: RuntimeMonitor
    backend: BackendLink

    @property
    def node_name(self) -> str:
        return f"vecu_{self.index}"

    def fault_count(self) -> int:
        """Faults that indicate a functional regression.

        Period deviations are excluded: during a staged update both
        instances briefly release the same task, which looks like period
        noise to the monitor but is expected handover behaviour.
        """
        return len([
            f for f in self.monitor.faults if f.kind in ("deadline", "jitter")
        ])

    def running_version(self, app_name: str) -> Optional[tuple]:
        instances = self.platform.running_instances(app_name)
        if not instances:
            return None
        return instances[0].model.version


class Fleet:
    """N simulated vehicles sharing one simulation clock."""

    def __init__(
        self,
        sim: Simulator,
        store: TrustStore,
        *,
        size: int,
    ) -> None:
        if size < 1:
            raise UpdateError("fleet needs at least one vehicle")
        self.sim = sim
        self.store = store
        self.vehicles: List[Vehicle] = []
        for index in range(size):
            platform = DynamicPlatform(
                sim, _vehicle_topology(index), trust_store=store
            )
            backend = BackendLink(sim, uplink_latency=0.1)
            monitor = RuntimeMonitor(
                sim, backend=backend, core_prefix=f"vecu_{index}.",
            )
            self.vehicles.append(
                Vehicle(index=index, platform=platform, monitor=monitor,
                        backend=backend)
            )

    def deploy_everywhere(self, app: AppModel, key_id: str) -> None:
        """Install + start the app on every vehicle; monitors watch it."""
        for vehicle in self.vehicles:
            package = build_package(app, self.store, key_id)
            vehicle.platform.install(package, vehicle.node_name)
        self.sim.run(until=self.sim.now + 1.0)
        for vehicle in self.vehicles:
            vehicle.platform.start_app(app.name, vehicle.node_name)
            for task in app.tasks:
                vehicle.monitor.watch(task)

    def versions(self, app_name: str) -> Dict[int, Optional[tuple]]:
        return {
            v.index: v.running_version(app_name) for v in self.vehicles
        }


def plan_waves(
    total: int,
    *,
    wave_size: Optional[int] = None,
    stages: Optional[Tuple[float, ...]] = None,
) -> List[Tuple[int, int]]:
    """Partition ``total`` vehicles into rollout waves of ``(start, stop)``.

    Two strategies, exactly one of which must be given:

    * ``wave_size`` — fixed-size waves, the classic
      :class:`CampaignManager` partition (e.g. 5 vehicles at size 2
      → ``[(0, 2), (2, 4), (4, 5)]``);
    * ``stages`` — staged fractions of the fleet, the canary → cohort →
      fleet shape OTA campaigns use (e.g. ``(0.01, 0.1, 1.0)``).  Each
      stage's cumulative population is ``ceil(total * fraction)``,
      clamped so every wave grows by at least one vehicle; trailing
      stages that add nobody are dropped.

    The plan is a pure function of its arguments — shard- and
    worker-count independent, like :func:`repro.exec.plan_shards`.
    """
    if (wave_size is None) == (stages is None):
        raise UpdateError("plan_waves needs exactly one of wave_size/stages")
    if total <= 0:
        return []
    if wave_size is not None:
        if wave_size < 1:
            raise UpdateError("wave size must be >= 1")
        return [
            (start, min(start + wave_size, total))
            for start in range(0, total, wave_size)
        ]
    waves: List[Tuple[int, int]] = []
    position = 0
    for fraction in stages:
        if not 0.0 < fraction <= 1.0:
            raise UpdateError(
                f"stage fractions must be in (0, 1], got {fraction}"
            )
        stop = min(total, max(position + 1, _ceil_frac(total, fraction)))
        if stop <= position:
            continue
        waves.append((position, stop))
        position = stop
        if position >= total:
            break
    if position < total:
        waves.append((position, total))
    return waves


def _ceil_frac(total: int, fraction: float) -> int:
    """``ceil(total * fraction)`` without float-boundary surprises."""
    exact = total * fraction
    rounded = int(exact)
    return rounded if rounded == exact else rounded + 1


@dataclass
class WaveResult:
    """Outcome of one rollout wave."""

    wave: int
    vehicle_indices: List[int]
    updated: int
    regressions: int


@dataclass
class CampaignResult:
    """Final outcome of a campaign."""

    app: str
    target_version: tuple
    waves: List[WaveResult] = field(default_factory=list)
    aborted: bool = False
    rolled_back: bool = False

    @property
    def vehicles_updated(self) -> int:
        return sum(w.updated for w in self.waves)


class CampaignManager:
    """Staged fleet rollout with monitor-gated waves and rollback."""

    def __init__(
        self,
        fleet: Fleet,
        key_id: str,
        *,
        wave_size: int = 2,
        soak_time: float = 1.0,
        abort_regression_ratio: float = 0.5,
    ) -> None:
        if wave_size < 1:
            raise UpdateError("wave size must be >= 1")
        self.fleet = fleet
        self.key_id = key_id
        self.wave_size = wave_size
        self.soak_time = soak_time
        self.abort_regression_ratio = abort_regression_ratio
        self.results: List[CampaignResult] = []

    def rollout(
        self,
        old_app: AppModel,
        new_app: AppModel,
    ) -> CampaignResult:
        """Run the campaign to completion (synchronously drives the sim).

        Vehicles are updated wave by wave with the staged strategy; after
        each wave soaks, vehicles whose monitors recorded new faults count
        as regressions.  Crossing the abort ratio rolls the affected wave
        back to ``old_app`` and stops the campaign.
        """
        if new_app.name != old_app.name:
            raise UpdateError("update must target the same application")
        sim = self.fleet.sim
        result = CampaignResult(app=new_app.name, target_version=new_app.version)
        vehicles = list(self.fleet.vehicles)
        wave_index = 0
        for start, stop in plan_waves(
            len(vehicles), wave_size=self.wave_size
        ):
            wave = vehicles[start:stop]
            wave_index += 1
            baseline = {v.index: v.fault_count() for v in wave}
            # capture each vehicle's *own* running model before touching
            # it: a mixed-version fleet (prior partial rollout) must roll
            # back to what each vehicle actually ran, not a shared old_app
            prior_models = {
                vehicle.index: self._running_model(vehicle, old_app)
                for vehicle in wave
            }
            updated = 0
            for vehicle in wave:
                package = build_package(new_app, self.fleet.store, self.key_id)
                orchestrator = UpdateOrchestrator(vehicle.platform)
                done: List = []
                orchestrator.staged_update(
                    new_app.name, vehicle.node_name, package
                ).add_callback(done.append)
                sim.run(until=sim.now + 0.5)
                if done and done[0].success:
                    updated += 1
                    for task in new_app.tasks:
                        vehicle.monitor.watch(task)
            # soak: let the new version run under observation
            sim.run(until=sim.now + self.soak_time)
            regressions = sum(
                1 for v in wave if v.fault_count() > baseline[v.index]
            )
            result.waves.append(WaveResult(
                wave=wave_index,
                vehicle_indices=[v.index for v in wave],
                updated=updated,
                regressions=regressions,
            ))
            if wave and regressions / len(wave) >= self.abort_regression_ratio:
                result.aborted = True
                self._rollback_wave(wave, prior_models)
                result.rolled_back = True
                break
        self.results.append(result)
        return result

    @staticmethod
    def _running_model(vehicle: Vehicle, fallback: AppModel) -> AppModel:
        """The app model this vehicle currently runs (fallback if none)."""
        instances = vehicle.platform.running_instances(fallback.name)
        return instances[0].model if instances else fallback

    def _rollback_wave(
        self, wave: List[Vehicle], prior_models: Dict[int, AppModel]
    ) -> None:
        """Staged-update each vehicle back to *its own* prior version."""
        sim = self.fleet.sim
        for vehicle in wave:
            prior = prior_models[vehicle.index]
            package = build_package(prior, self.fleet.store, self.key_id)
            orchestrator = UpdateOrchestrator(vehicle.platform)
            try:
                orchestrator.staged_update(
                    prior.name, vehicle.node_name, package
                )
            except UpdateError:
                continue  # the app died entirely; nothing to roll back
            sim.run(until=sim.now + 0.5)


# -- multi-replication campaign sweeps (repro.exec fan-out site) ---------


@dataclass(frozen=True)
class CampaignSpec:
    """Picklable description of one fleet-campaign replication.

    Each replication builds a fresh fleet inside its own simulator, rolls
    ``app_name`` from ``base_version`` to ``target_version`` and reports
    a :class:`CampaignOutcome`.  ``target_wcet_jitter`` adds a
    replication-seeded uniform perturbation to the new version's task
    execution time, so a sweep explores the uncertainty band around the
    nominal update instead of replaying one trajectory N times.
    """

    fleet_size: int = 4
    wave_size: int = 2
    soak_time: float = 0.5
    abort_regression_ratio: float = 0.5
    app_name: str = "fn"
    period: float = 0.01
    deadline: float = 0.008
    base_version: Tuple[int, int] = (1, 0)
    base_wcet: float = 0.001
    target_version: Tuple[int, int] = (1, 1)
    target_wcet: float = 0.001
    target_wcet_jitter: float = 0.0
    target_deadline: Optional[float] = None
    # post-deploy warm-up before the rollout starts; part of the shared
    # base, so fork-per-replication pays it once per sweep
    settle_time: float = 0.5


@dataclass(frozen=True)
class CampaignOutcome:
    """Picklable summary of one campaign replication."""

    replication: str
    target_wcet: float
    aborted: bool
    rolled_back: bool
    vehicles_updated: int
    wave_count: int
    regressions: int
    final_versions: Tuple[Tuple[int, Optional[Tuple[int, ...]]], ...]

    @property
    def completed(self) -> bool:
        return not self.aborted


def _app_for(spec: CampaignSpec, version, wcet: float, deadline: float,
             task_suffix: str) -> AppModel:
    return AppModel(
        name=spec.app_name,
        tasks=(TaskSpec(
            name=f"{spec.app_name}_loop{task_suffix}",
            period=spec.period, wcet=wcet, deadline=deadline,
        ),),
        memory_kib=64, image_kib=128, version=tuple(version),
    )


def build_fleet_base(sim: Simulator, spec: CampaignSpec) -> Dict[str, object]:
    """Build the deterministic, RNG-free half of a campaign replication.

    Trust store, fleet, base-version deployment and the post-deploy
    settle run — everything every replication shares verbatim.  The
    returned dict is registered under ``sim.world["campaign"]`` so a
    forked world can retrieve its private copies of the handles.
    """
    store = TrustStore()
    store.generate_key("oem")
    fleet = Fleet(sim, store, size=spec.fleet_size)
    # sweeps judge replications by monitor faults and version state, not
    # the per-job history; bound it so the shared base snapshot stays the
    # same size regardless of settle length
    for vehicle in fleet.vehicles:
        for node in vehicle.platform.nodes.values():
            for core in node.cores:
                core.job_history_limit = 64
    old_app = _app_for(
        spec, spec.base_version, spec.base_wcet, spec.deadline, ""
    )
    fleet.deploy_everywhere(old_app, "oem")
    sim.run(until=sim.now + spec.settle_time)
    base: Dict[str, object] = {"fleet": fleet, "old_app": old_app}
    sim.adopt("campaign", base)
    return base


def _finish_campaign(
    base: Dict[str, object],
    spec: CampaignSpec,
    target_wcet: float,
    job_id: str,
    ctx: JobContext,
) -> CampaignOutcome:
    """Roll out the jittered target version on a built base and report."""
    fleet: Fleet = base["fleet"]
    old_app: AppModel = base["old_app"]
    manager = CampaignManager(
        fleet, "oem",
        wave_size=spec.wave_size,
        soak_time=spec.soak_time,
        abort_regression_ratio=spec.abort_regression_ratio,
    )
    new_app = _app_for(
        spec, spec.target_version, target_wcet,
        spec.target_deadline if spec.target_deadline is not None
        else spec.deadline,
        "_v2",
    )
    result = manager.rollout(old_app, new_app)
    updated = ctx.metrics.counter("campaign.vehicles_updated")
    updated.inc(result.vehicles_updated)
    regressed = ctx.metrics.counter("campaign.regressions")
    regressed.inc(sum(w.regressions for w in result.waves))
    aborted = ctx.metrics.counter("campaign.aborted")
    if result.aborted:
        aborted.inc()
    versions = tuple(sorted(
        (index, version)
        for index, version in fleet.versions(spec.app_name).items()
    ))
    return CampaignOutcome(
        replication=job_id,
        target_wcet=target_wcet,
        aborted=result.aborted,
        rolled_back=result.rolled_back,
        vehicles_updated=result.vehicles_updated,
        wave_count=len(result.waves),
        regressions=sum(w.regressions for w in result.waves),
        final_versions=versions,
    )


def _jittered_wcet(spec: CampaignSpec, ctx: JobContext) -> float:
    target_wcet = spec.target_wcet
    if spec.target_wcet_jitter:
        target_wcet += ctx.rng().uniform(
            "campaign.wcet_jitter", 0.0, spec.target_wcet_jitter
        )
    return target_wcet


class CampaignJob(SimJob):
    """One fleet-campaign replication as a :class:`~repro.exec.SimJob`.

    Builds simulator, trust store, fleet and campaign manager fresh in
    the worker; all replication-specific randomness (the wcet jitter)
    comes from the job context's derived seed, so a sweep's outcomes are
    independent of worker count and completion order.
    """

    def __init__(self, job_id: str, spec: CampaignSpec) -> None:
        self.job_id = job_id
        self.spec = spec

    def run(self, ctx: JobContext) -> CampaignOutcome:
        spec = self.spec
        target_wcet = _jittered_wcet(spec, ctx)
        sim = Simulator(metrics=ctx.metrics)
        base = build_fleet_base(sim, spec)
        return _finish_campaign(base, spec, target_wcet, self.job_id, ctx)


class ForkedCampaignJob(SimJob):
    """One fleet-campaign replication cloned from a pre-built base world.

    The sweep builds the deployed-and-settled fleet once, snapshots it,
    and ships the snapshot per worker as shared context; each replication
    restores a private copy and runs only the rollout with its own
    jittered target wcet.  Outcomes are byte-identical to
    :class:`CampaignJob` because the base construction is RNG-free.
    """

    def __init__(self, job_id: str, spec: CampaignSpec) -> None:
        self.job_id = job_id
        self.spec = spec

    def run(self, ctx: JobContext) -> CampaignOutcome:
        snap = ctx.shared
        if snap is None:
            raise UpdateError(
                "forked campaign job needs a SimSnapshot as shared context"
            )
        spec = self.spec
        target_wcet = _jittered_wcet(spec, ctx)
        sim = snap.restore()
        base = sim.world["campaign"]
        outcome = _finish_campaign(base, spec, target_wcet, self.job_id, ctx)
        # the restored world counted into its own (forked) registry; fold
        # it into the job registry so digests match the rebuild path
        ctx.metrics.absorb(sim.metrics)
        return outcome


def build_sweep_snapshot(spec: CampaignSpec):
    """Build the fleet base once and return its reusable snapshot.

    The base world gets its own enabled metrics registry: forks inherit
    it (base counts included), keep counting through the rollout, and
    the job folds the final registry into the job context — so the
    merged digest is identical to the rebuild path's.
    """
    from ..obs.metrics import MetricsRegistry

    sim = Simulator(metrics=MetricsRegistry())
    build_fleet_base(sim, spec)
    return sim.snapshot()


@dataclass
class SweepResult:
    """Aggregate outcome of a multi-replication campaign sweep."""

    outcomes: List[CampaignOutcome]
    digest: Dict

    @property
    def aborted_count(self) -> int:
        return sum(1 for o in self.outcomes if o.aborted)

    @property
    def completed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.completed)


def sweep_campaigns(
    spec: CampaignSpec,
    *,
    replications: int,
    executor: Optional["ParallelExecutor"] = None,
    master_seed: Optional[int] = None,
    fork: bool = True,
    checkpoint=None,
    fault_points=None,
) -> SweepResult:
    """Run ``replications`` independent campaign replications.

    With an executor the replications fan out across its warm worker
    pool; without one they run inline through the shared serial
    executor.  Either way, replication ``i`` is seeded from
    ``master_seed`` (defaulting to the executor's own master seed when
    one is given, else ``0``) and its id alone, so the outcome list is
    byte-identical for any worker count.

    With ``fork=True`` (the default) the deployed-and-settled fleet is
    built once, snapshotted and forked per replication instead of being
    rebuilt in every job — same outcomes, a fraction of the time.
    ``fork=False`` keeps the rebuild path for equivalence checks.

    ``checkpoint`` (a :class:`repro.exec.recovery.CheckpointSpec`)
    persists each completed replication atomically; an interrupted
    sweep resumes via :func:`resume_sweep` /
    :func:`repro.exec.recovery.resume_campaign`, re-running only the
    missing replications with their original seeds.
    """
    if replications < 1:
        raise UpdateError("sweep needs at least one replication")
    context = None
    if fork:
        context = build_sweep_snapshot(spec)
        jobs: List[SimJob] = [
            ForkedCampaignJob(f"campaign.rep{i}", spec)
            for i in range(replications)
        ]
    else:
        jobs = [
            CampaignJob(f"campaign.rep{i}", spec)
            for i in range(replications)
        ]
    if master_seed is not None:
        seed = master_seed
    elif executor is not None:
        seed = executor.master_seed
    else:
        seed = 0
    if executor is None:
        # default executor is run-time dispatch into the layer above
        from ..exec.pool import get_inline_executor  # repro: allow[ARCH603]

        executor = get_inline_executor()
    store = None
    if checkpoint is not None:
        # checkpointing re-enters exec on demand
        from ..exec.recovery import CheckpointStore  # repro: allow[ARCH603]

        store = CheckpointStore(
            checkpoint, kind="campaign_sweep",
            plan=(spec, replications, seed),
            meta={"every_n_shards": checkpoint.every_n_shards},
            fault_points=fault_points,
        )
    # checkpointed dispatch re-enters exec at run time
    from ..exec.recovery import run_jobs_checkpointed  # repro: allow[ARCH603]

    report = run_jobs_checkpointed(
        jobs, executor=executor, master_seed=seed, context=context,
        store=store,
    )
    failed = [r for r in report.results if not r.ok]
    if failed:
        detail = "; ".join(f"{r.job_id}: {r.error}" for r in failed[:5])
        raise UpdateError(
            f"{len(failed)}/{replications} campaign replications failed "
            f"({detail})"
        )
    return SweepResult(outcomes=report.values, digest=report.merged_digest())


def resume_sweep(directory: str, *,
                 executor: Optional["ParallelExecutor"] = None,
                 fork: bool = True) -> SweepResult:
    """Resume an interrupted checkpointed campaign sweep (see
    :func:`repro.exec.recovery.resume_campaign`)."""
    # resume delegates upward to the recovery layer at run time
    from ..exec.recovery import resume_campaign  # repro: allow[ARCH603]

    return resume_campaign(directory, executor=executor, fork=fork)
