"""Admission control (Section 5.3 refs [6], [19]; Section 3.1 CPU).

Before an application is instantiated on a node, the controller performs
the compositional checks: will every deterministic task — existing and
incoming — still meet its deadline, does the memory fit, is the OS class
right, and does mixed-criticality co-location have MMU backing.  The
platform refuses the app otherwise, which is what keeps runtime dynamics
safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..model.applications import AppModel
from ..osal.analysis import is_schedulable_fp, scaled_utilization
from ..osal.task import Criticality
from .node import PlatformNode


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    app: str
    node: str
    core_index: int
    reasons: tuple = ()
    predicted_utilization: float = 0.0

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Runs the admission battery for one platform."""

    def __init__(self, *, nda_budget_share: Optional[float] = 0.3) -> None:
        self.nda_budget_share = nda_budget_share
        self.admitted_count = 0
        self.rejected_count = 0

    def test(
        self, node: PlatformNode, app: AppModel, core_index: int = 0
    ) -> AdmissionDecision:
        """Check whether ``app`` may be instantiated on ``node``/core."""
        reasons: List[str] = []
        spec = node.spec
        if node.failed:
            reasons.append("node has failed")
        if not 0 <= core_index < len(node.cores):
            reasons.append(f"core {core_index} out of range")
            core_index = 0
        if app.memory_kib > node.memory_headroom_kib():
            reasons.append(
                f"insufficient memory ({app.memory_kib:g} KiB needed, "
                f"{node.memory_headroom_kib():g} free)"
            )
        if app.has_deterministic_tasks and not spec.os_class.supports_deterministic:
            reasons.append(
                f"deterministic app on non-real-time OS {spec.os_class.value}"
            )
        if app.needs_gpu and not spec.has_gpu:
            reasons.append("GPU required but not present")
        if app.needs_mmu_isolation and not spec.has_mmu:
            reasons.append("MMU isolation required but not present")
        mixed = self._would_be_mixed(node, app)
        if mixed and not spec.has_mmu:
            reasons.append("mixed-criticality co-location without MMU")
        utilization = 0.0
        if app.has_deterministic_tasks:
            existing = node.deterministic_tasks_on_core(core_index)
            incoming = [
                t
                for t in app.tasks
                if t.criticality is Criticality.DETERMINISTIC
            ]
            combined = existing + incoming
            utilization = scaled_utilization(combined, spec.speed_factor)
            # deterministic tasks must fit in the share left over after the
            # NDA budget server's reservation
            budget_margin = 1.0 - (self.nda_budget_share or 0.0)
            if utilization > budget_margin + 1e-12:
                reasons.append(
                    f"deterministic utilization {utilization:.3f} exceeds "
                    f"available share {budget_margin:.3f}"
                )
            elif not is_schedulable_fp(combined, spec.speed_factor):
                reasons.append("response-time analysis failed")
        decision = AdmissionDecision(
            admitted=not reasons,
            app=app.name,
            node=node.name,
            core_index=core_index,
            reasons=tuple(reasons),
            predicted_utilization=utilization,
        )
        if decision.admitted:
            self.admitted_count += 1
        else:
            self.rejected_count += 1
        return decision

    def best_core(
        self, node: PlatformNode, app: AppModel
    ) -> Optional[AdmissionDecision]:
        """Try every core; return the first admitting decision or ``None``."""
        for index in range(len(node.cores)):
            decision = self.test(node, app, index)
            if decision:
                return decision
        return None

    @staticmethod
    def _would_be_mixed(node: PlatformNode, app: AppModel) -> bool:
        """Would admitting ``app`` put DA and NDA apps side by side?"""
        from .application import AppState

        has_det = app.is_deterministic
        has_nda = bool(app.tasks) and not app.is_deterministic
        for instance in node.instances.values():
            if instance.state not in (AppState.RUNNING, AppState.STARTING):
                continue
            if instance.model.is_deterministic:
                has_det = True
            elif instance.model.tasks:
                has_nda = True
        return has_det and has_nda
