"""Redundancy and fail-operational behaviour (Section 3.3).

"The fail-safe state of an autonomous vehicle is not necessarily a safe
shutdown ... the dynamic platform needs to support instantiating
applications multiple times.  It might be necessary to install multiple
ECUs running the dynamic platform and synchronized applications across
these ECUs."

:class:`RedundancyManager` deploys hot-standby replica sets across
nodes, keeps replica state synchronised, detects node failure via
heartbeats, and promotes a standby on failure.  The promotion latency —
bounded by the heartbeat period plus promotion work — is benchmark C6's
metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import PlatformError
from ..middleware.registry import ServiceOffer
from ..sim import Simulator
from .application import AppInstance, AppState
from .platform import DynamicPlatform

#: Work to promote a hot standby to primary (rebind services, arm control).
PROMOTION_LATENCY = 0.002


@dataclass
class FailoverEvent:
    """One recorded failover."""

    app: str
    failed_node: str
    new_primary_node: str
    failure_time: float
    detection_time: float
    promoted_time: float

    @property
    def interruption(self) -> float:
        """Time the function had no serving primary."""
        return self.promoted_time - self.failure_time


class ReplicaSet:
    """One application replicated across several nodes (hot standby)."""

    def __init__(
        self,
        manager: "RedundancyManager",
        app_name: str,
        instances: List[AppInstance],
        service_id: Optional[int],
    ) -> None:
        self.manager = manager
        self.app_name = app_name
        self.instances = instances
        self.service_id = service_id
        self.primary_index = 0
        self.failovers: List[FailoverEvent] = []
        self.exhausted = False

    @property
    def primary(self) -> AppInstance:
        return self.instances[self.primary_index]

    @property
    def standbys(self) -> List[AppInstance]:
        return [
            inst
            for i, inst in enumerate(self.instances)
            if i != self.primary_index and inst.state is AppState.RUNNING
        ]

    def sync_state(self) -> None:
        """Replicate the primary's state to all standbys (periodic)."""
        snapshot = self.primary.snapshot_state()
        for standby in self.standbys:
            standby.adopt_state(snapshot)

    def check_and_failover(self, now: float, failure_time: float) -> bool:
        """If the primary's node has failed, promote the best standby.

        Returns ``True`` if a failover happened.
        """
        primary = self.primary
        node = self.manager.platform.node(primary.node_name)
        if not node.failed and primary.state is AppState.RUNNING:
            return False
        candidates = [
            (i, inst)
            for i, inst in enumerate(self.instances)
            if i != self.primary_index
            and inst.state is AppState.RUNNING
            and not self.manager.platform.node(inst.node_name).failed
        ]
        if not candidates:
            self.exhausted = True
            return False
        index, new_primary = candidates[0]
        old_node = primary.node_name
        self.primary_index = index
        sim = self.manager.sim
        promoted_at = now + PROMOTION_LATENCY
        if self.service_id is not None:
            sim.schedule(PROMOTION_LATENCY, self._reoffer, new_primary)
        self.failovers.append(
            FailoverEvent(
                app=self.app_name,
                failed_node=old_node,
                new_primary_node=new_primary.node_name,
                failure_time=failure_time,
                detection_time=now,
                promoted_time=promoted_at,
            )
        )
        sim.trace(
            "redundancy.failover",
            app=self.app_name,
            from_node=old_node,
            to_node=new_primary.node_name,
            interruption=promoted_at - failure_time,
        )
        return True

    def _reoffer(self, new_primary: AppInstance) -> None:
        registry = self.manager.platform.registry
        registry.offer(
            ServiceOffer(
                service_id=self.service_id,
                instance_id=1,
                ecu=new_primary.node_name,
                provider_app=self.app_name,
            )
        )


class RedundancyManager:
    """Deploys and supervises replica sets on a platform."""

    def __init__(
        self,
        platform: DynamicPlatform,
        *,
        heartbeat_period: float = 0.005,
        sync_period: float = 0.05,
    ) -> None:
        self.platform = platform
        self.sim: Simulator = platform.sim
        self.heartbeat_period = heartbeat_period
        self.sync_period = sync_period
        self.replica_sets: Dict[str, ReplicaSet] = {}
        self._last_known_failure: Dict[str, float] = {}
        self._supervising = False

    def deploy(
        self,
        app_name: str,
        node_names: List[str],
        *,
        service_id: Optional[int] = None,
        startup_latency: float = 0.0,
    ) -> ReplicaSet:
        """Start one instance of ``app_name`` per node (first = primary).

        The app's image must already be installed on every node.
        """
        if len(node_names) < 1:
            raise PlatformError("need at least one node")
        if app_name in self.replica_sets:
            raise PlatformError(f"{app_name} is already replicated")
        instances = []
        for node_name in node_names:
            instances.append(
                self.platform.start_app(
                    app_name,
                    node_name,
                    instance_id=1,
                    startup_latency=startup_latency,
                )
            )
        replica_set = ReplicaSet(self, app_name, instances, service_id)
        if service_id is not None:
            self.platform.registry.offer(
                ServiceOffer(
                    service_id=service_id,
                    instance_id=1,
                    ecu=node_names[0],
                    provider_app=app_name,
                )
            )
        self.replica_sets[app_name] = replica_set
        self._ensure_supervision()
        return replica_set

    def _ensure_supervision(self) -> None:
        if self._supervising:
            return
        self._supervising = True
        # callback style (self-rescheduling bound method) rather than a
        # generator process: suspended generator frames cannot be deep-
        # copied, and supervision must survive sim.snapshot()/fork()
        self.sim.post(self.heartbeat_period, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        now = self.sim.now
        for replica_set in self.replica_sets.values():
            primary_node = self.platform.node(replica_set.primary.node_name)
            failure_time = (
                primary_node.state.failure_time
                if primary_node.state.failure_time is not None
                else now
            )
            replica_set.check_and_failover(now, failure_time)
        # periodic state sync on the sync cadence
        if (
            round(now / self.heartbeat_period)
            % max(1, int(self.sync_period / self.heartbeat_period))
            == 0
        ):
            for replica_set in self.replica_sets.values():
                if not self.platform.node(
                    replica_set.primary.node_name
                ).failed:
                    replica_set.sync_state()
        self.sim.post(self.heartbeat_period, self._heartbeat_tick)

    def all_failovers(self) -> List[FailoverEvent]:
        events = []
        for replica_set in self.replica_sets.values():
            events.extend(replica_set.failovers)
        return sorted(events, key=lambda e: e.detection_time)
