"""Runtime application instances and their lifecycle.

An :class:`AppInstance` is one running copy of an
:class:`~repro.model.applications.AppModel` on one platform node.  The
same app may be instantiated more than once — for redundancy (Section
3.3) and during staged updates (Section 3.2) — distinguished by
``instance_id``.
"""

from __future__ import annotations

import copy
from enum import Enum
from typing import Dict, List, Optional

from ..errors import PlatformError
from ..model.applications import AppModel
from ..osal.core import Core, PeriodicSource
from ..sim import Simulator


class AppState(Enum):
    """Lifecycle states of an application instance."""

    INSTALLED = "installed"
    STARTING = "starting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal lifecycle transitions.
_TRANSITIONS = {
    AppState.INSTALLED: {AppState.STARTING},
    AppState.STARTING: {AppState.RUNNING, AppState.FAILED},
    AppState.RUNNING: {AppState.STOPPING, AppState.FAILED},
    AppState.STOPPING: {AppState.STOPPED},
    AppState.STOPPED: {AppState.STARTING},
    AppState.FAILED: {AppState.STARTING, AppState.STOPPED},
}


class AppInstance:
    """One deployed copy of an application on a node.

    The instance owns the periodic sources feeding the node's scheduler
    and an opaque ``internal_state`` dict that staged updates synchronise
    (Section 3.2, step 2).
    """

    def __init__(
        self,
        sim: Simulator,
        model: AppModel,
        node_name: str,
        core: Core,
        *,
        instance_id: int = 1,
        process_name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.model = model
        self.node_name = node_name
        self.core = core
        self.instance_id = instance_id
        self.process_name = process_name or f"{model.name}#{instance_id}"
        self.state = AppState.INSTALLED
        self.sources: List[PeriodicSource] = []
        self.internal_state: Dict[str, object] = {}
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.failure_reason: Optional[str] = None

    # -- state machine ---------------------------------------------------------

    def _transition(self, new_state: AppState) -> None:
        allowed = _TRANSITIONS.get(self.state, set())
        if new_state not in allowed:
            raise PlatformError(
                f"{self.qualified_name}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        self.sim.trace(
            "app.state",
            app=self.model.name,
            instance=self.instance_id,
            node=self.node_name,
            state=new_state.value,
        )

    @property
    def qualified_name(self) -> str:
        return f"{self.model.name}#{self.instance_id}@{self.node_name}"

    @property
    def is_running(self) -> bool:
        return self.state is AppState.RUNNING

    # -- lifecycle --------------------------------------------------------------

    def start(self, *, startup_latency: float = 0.0) -> None:
        """Begin execution: create one periodic source per task."""
        self._transition(AppState.STARTING)
        if startup_latency > 0:
            self.sim.schedule(startup_latency, self._activate)
        else:
            self._activate()

    def _activate(self) -> None:
        if self.state is not AppState.STARTING:
            return  # failed or stopped while starting
        for task in self.model.tasks:
            self.sources.append(
                PeriodicSource(self.sim, self.core, task)
            )
        self.started_at = self.sim.now
        self._transition(AppState.RUNNING)

    def stop(self) -> None:
        """Stop releasing jobs and cancel queued work."""
        self._transition(AppState.STOPPING)
        for source in self.sources:
            source.stop()
        for task in self.model.tasks:
            self.core.cancel_jobs_of(task.name)
        self.sources.clear()
        self.stopped_at = self.sim.now
        self._transition(AppState.STOPPED)

    def fail(self, reason: str) -> None:
        """Crash the instance (fault injection / node failure)."""
        if self.state in (AppState.STOPPED, AppState.FAILED):
            return
        for source in self.sources:
            source.stop()
        self.sources.clear()
        self.failure_reason = reason
        self.state = AppState.FAILED
        self.sim.trace(
            "app.failed",
            app=self.model.name,
            instance=self.instance_id,
            node=self.node_name,
            reason=reason,
        )

    # -- state synchronisation (staged updates) -----------------------------------

    def state_size_bytes(self) -> int:
        """Serialised size of the internal state (sync cost model)."""
        return 64 + 32 * len(self.internal_state)

    def snapshot_state(self) -> Dict[str, object]:
        return copy.deepcopy(self.internal_state)

    def adopt_state(self, snapshot: Dict[str, object]) -> None:
        # Deep copy, not dict(): a shallow copy would share nested mutable
        # values (lists, dicts) between the old and new instance, so a
        # failed-over replica or updated app mutating its state would
        # silently corrupt its donor's.
        self.internal_state = copy.deepcopy(snapshot)

    # -- metrics --------------------------------------------------------------------

    def deadline_misses(self) -> int:
        return sum(src.miss_count() for src in self.sources)

    def jobs_released(self) -> int:
        return sum(src.released for src in self.sources)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<AppInstance {self.qualified_name} {self.state.value}>"
