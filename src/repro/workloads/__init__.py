"""Workload generation: synthetic task/app sets and the realistic
automotive application catalog."""

from .automotive import build_app_catalog, reference_system
from .synthetic import (
    PERIOD_GRID,
    synthetic_app,
    synthetic_app_set,
    synthetic_task_set,
    uunifast,
)

__all__ = [
    "PERIOD_GRID",
    "build_app_catalog",
    "reference_system",
    "synthetic_app",
    "synthetic_app_set",
    "synthetic_task_set",
    "uunifast",
]
