"""Synthetic task-set and app-set generators.

UUniFast-based utilization draws with log-uniform periods — the standard
methodology for schedulability experiments — plus helpers that wrap task
sets into :class:`~repro.model.applications.AppModel` objects.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..model.applications import AppModel, Asil
from ..osal.task import Criticality, TaskSpec
from ..sim.rng import RngStreams


def uunifast(
    streams: RngStreams, n: int, total_utilization: float, stream: str = "uunifast"
) -> List[float]:
    """Draw ``n`` utilizations summing to ``total_utilization`` (UUniFast)."""
    if n <= 0:
        raise ConfigurationError("need at least one task")
    if total_utilization <= 0:
        raise ConfigurationError("total utilization must be positive")
    rng = streams.stream(stream)
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


#: Period grid used for synthetic deterministic tasks (seconds).  Using a
#: grid keeps hyperperiods small enough for table synthesis.
PERIOD_GRID = (0.005, 0.010, 0.020, 0.040, 0.050, 0.100)


def synthetic_task_set(
    streams: RngStreams,
    n: int,
    total_utilization: float,
    *,
    name_prefix: str = "task",
    criticality: Criticality = Criticality.DETERMINISTIC,
    deadline_factor: float = 1.0,
    stream: str = "taskset",
) -> List[TaskSpec]:
    """Generate ``n`` periodic tasks with the given total utilization.

    Periods are drawn from :data:`PERIOD_GRID`; WCETs follow from the
    UUniFast utilization split.  ``deadline_factor < 1`` produces
    constrained deadlines.
    """
    if not 0 < deadline_factor <= 1.0:
        raise ConfigurationError("deadline factor must be in (0, 1]")
    utils = uunifast(streams, n, total_utilization, stream=f"{stream}.u")
    rng = streams.stream(f"{stream}.periods")
    tasks = []
    for i, util in enumerate(utils):
        period = rng.choice(PERIOD_GRID)
        wcet = max(util * period, 1e-6)
        if wcet > period:  # extreme UUniFast draw; clamp to feasible
            wcet = period * 0.95
        tasks.append(
            TaskSpec(
                name=f"{name_prefix}_{i:03d}",
                period=period,
                wcet=wcet,
                deadline=period * deadline_factor,
                criticality=criticality,
                jitter_tolerance=period * 0.1,
            )
        )
    return tasks


def synthetic_app(
    streams: RngStreams,
    name: str,
    *,
    n_tasks: int = 2,
    utilization: float = 0.1,
    deterministic: bool = True,
    asil: Asil = Asil.B,
    memory_kib: float = 256.0,
) -> AppModel:
    """Wrap a synthetic task set into an application model."""
    criticality = (
        Criticality.DETERMINISTIC if deterministic else Criticality.NON_DETERMINISTIC
    )
    tasks = synthetic_task_set(
        streams,
        n_tasks,
        utilization,
        name_prefix=f"{name}_t",
        criticality=criticality,
        stream=f"app.{name}",
    )
    return AppModel(
        name=name,
        tasks=tuple(tasks),
        asil=asil if deterministic else Asil.QM,
        memory_kib=memory_kib,
        image_kib=memory_kib * 4,
    )


def synthetic_app_set(
    streams: RngStreams,
    n_apps: int,
    *,
    det_fraction: float = 0.5,
    utilization_per_app: float = 0.08,
    stream: str = "appset",
) -> List[AppModel]:
    """A mixed DA/NDA application population for admission experiments."""
    if not 0 <= det_fraction <= 1:
        raise ConfigurationError("det_fraction must be in [0, 1]")
    apps = []
    n_det = round(n_apps * det_fraction)
    for i in range(n_apps):
        deterministic = i < n_det
        apps.append(
            synthetic_app(
                streams,
                f"app_{i:03d}",
                n_tasks=1 + (i % 3),
                utilization=utilization_per_app,
                deterministic=deterministic,
                asil=Asil.C if deterministic else Asil.QM,
            )
        )
    return apps
