"""A realistic automotive application catalog with typed interfaces.

The functions the paper's introduction motivates: classic control loops
(motor/suspension domains as "typical contributors" to deterministic
applications), ADAS functions, and infotainment as the typical
non-deterministic contributor — wired together through event, message and
stream interfaces over the standard type registry.
"""

from __future__ import annotations

from typing import Tuple

from ..hw.topology import Topology
from ..model.applications import AppModel, Asil, RequiredInterface
from ..model.interfaces import InterfaceDef, InterfaceKind, InterfaceRequirements
from ..model.system import SystemModel
from ..model.types import TypeRegistry, standard_types
from ..osal.task import Criticality, TaskSpec


def _det(name: str, period: float, wcet: float, **kw) -> TaskSpec:
    kw.setdefault("jitter_tolerance", period * 0.1)
    return TaskSpec(
        name=name, period=period, wcet=wcet,
        criticality=Criticality.DETERMINISTIC, **kw,
    )


def _nda(name: str, period: float, wcet: float, **kw) -> TaskSpec:
    return TaskSpec(
        name=name, period=period, wcet=wcet,
        criticality=Criticality.NON_DETERMINISTIC, **kw,
    )


def build_app_catalog(
    types: TypeRegistry = None,
) -> Tuple[list, list]:
    """Return ``(interfaces, apps)`` of the reference vehicle function set."""
    types = types or standard_types()
    interfaces = [
        InterfaceDef(
            name="wheel_speeds",
            kind=InterfaceKind.EVENT,
            owner="wheel_sensor_fusion",
            data_type=types.get("WheelSpeeds"),
            requirements=InterfaceRequirements(
                max_latency=0.005, period=0.010,
            ),
        ),
        InterfaceDef(
            name="vehicle_state",
            kind=InterfaceKind.EVENT,
            owner="vehicle_state_estimator",
            data_type=types.get("VehicleState"),
            requirements=InterfaceRequirements(
                max_latency=0.010, period=0.010,
            ),
        ),
        InterfaceDef(
            name="object_list",
            kind=InterfaceKind.EVENT,
            owner="object_fusion",
            data_type=types.get("ObjectList"),
            requirements=InterfaceRequirements(
                max_latency=0.020, period=0.040,
            ),
        ),
        InterfaceDef(
            name="brake_request",
            kind=InterfaceKind.MESSAGE,
            owner="brake_controller",
            data_type=types.get("BrakeCommand"),
            response_type=types.get("uint8"),
            requirements=InterfaceRequirements(max_latency=0.010),
        ),
        InterfaceDef(
            name="camera_stream",
            kind=InterfaceKind.STREAM,
            owner="front_camera",
            data_type=types.get("CameraFrameChunk"),
            requirements=InterfaceRequirements(
                period=0.033, min_bandwidth_bps=2_000_000.0,
            ),
        ),
        InterfaceDef(
            name="diagnostics",
            kind=InterfaceKind.MESSAGE,
            owner="diagnosis_service",
            data_type=types.get("DiagnosticRecord"),
            response_type=types.get("uint8"),
        ),
        InterfaceDef(
            name="media_stream",
            kind=InterfaceKind.STREAM,
            owner="media_server",
            data_type=types.get("CameraFrameChunk"),
            requirements=InterfaceRequirements(
                period=0.010, min_bandwidth_bps=1_000_000.0,
            ),
        ),
    ]
    apps = [
        AppModel(
            name="wheel_sensor_fusion",
            tasks=(_det("wheel_read", 0.010, 0.0008),),
            provides=("wheel_speeds",),
            asil=Asil.D,
            memory_kib=128,
            image_kib=512,
        ),
        AppModel(
            name="vehicle_state_estimator",
            tasks=(_det("state_est", 0.010, 0.0015),),
            provides=("vehicle_state",),
            requires=(RequiredInterface("wheel_speeds"),),
            asil=Asil.D,
            memory_kib=256,
            image_kib=1024,
        ),
        AppModel(
            name="brake_controller",
            tasks=(_det("brake_loop", 0.005, 0.0010, deadline=0.004),),
            provides=("brake_request",),
            requires=(RequiredInterface("vehicle_state"),),
            asil=Asil.D,
            memory_kib=192,
            image_kib=768,
        ),
        AppModel(
            name="suspension_control",
            tasks=(_det("susp_loop", 0.010, 0.0012),),
            requires=(RequiredInterface("vehicle_state"),),
            asil=Asil.C,
            memory_kib=160,
            image_kib=640,
        ),
        AppModel(
            name="front_camera",
            tasks=(_det("capture", 0.033, 0.002),),
            provides=("camera_stream",),
            asil=Asil.C,
            memory_kib=8192,
            image_kib=4096,
        ),
        AppModel(
            name="object_fusion",
            tasks=(_det("fuse", 0.040, 0.008),),
            provides=("object_list",),
            requires=(
                RequiredInterface("camera_stream"),
                RequiredInterface("vehicle_state"),
            ),
            asil=Asil.C,
            memory_kib=16384,
            image_kib=8192,
            needs_gpu=True,
        ),
        AppModel(
            name="acc",
            tasks=(_det("acc_loop", 0.020, 0.003),),
            requires=(
                RequiredInterface("object_list"),
                RequiredInterface("vehicle_state"),
                RequiredInterface("brake_request"),
            ),
            asil=Asil.C,
            memory_kib=512,
            image_kib=2048,
        ),
        AppModel(
            name="diagnosis_service",
            tasks=(_nda("diag_poll", 0.100, 0.002),),
            provides=("diagnostics",),
            asil=Asil.QM,
            memory_kib=512,
            image_kib=1024,
        ),
        AppModel(
            name="media_server",
            tasks=(_nda("media_pump", 0.010, 0.004),),
            provides=("media_stream",),
            asil=Asil.QM,
            memory_kib=65536,
            image_kib=131072,
        ),
        AppModel(
            name="navigation",
            tasks=(_nda("nav_update", 0.200, 0.050),),
            requires=(
                RequiredInterface("vehicle_state"),
                RequiredInterface("diagnostics"),
            ),
            asil=Asil.QM,
            memory_kib=131072,
            image_kib=262144,
        ),
    ]
    return interfaces, apps


def reference_system(topology: Topology) -> SystemModel:
    """Assemble the reference SystemModel on an arbitrary topology."""
    model = SystemModel(topology)
    interfaces, apps = build_app_catalog()
    for app in apps:
        model.add_app(app)
    for interface in interfaces:
        model.add_interface(interface)
    return model
