"""Observability: metrics, kernel profiling and reporting.

The measurement substrate for the dynamic platform (Section 3.4 of the
paper: runtime monitoring feeding adaptation decisions).  Three parts:

* :mod:`repro.obs.metrics` — counters, gauges and streaming histograms
  in a :class:`MetricsRegistry`, near-free when disabled;
* :mod:`repro.obs.profiler` — :class:`KernelProfiler` attributing
  wall-clock time and event counts per callback / process / category;
* :mod:`repro.obs.report` — text digest and machine-readable JSON over
  any combination of registry, profiler and tracer.
"""

from .metrics import Counter, Gauge, Histogram, Instrument, MetricsRegistry
from .profiler import KernelProfiler, ProfileRecord
from .report import digest, digest_for, render_for, render_text, write_json

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "KernelProfiler",
    "MetricsRegistry",
    "ProfileRecord",
    "digest",
    "digest_for",
    "render_for",
    "render_text",
    "write_json",
]
