"""Observability reports: one text digest, one machine-readable JSON.

Benchmarks (via ``benchmarks/_tables.py``) and the XiL harness use this
module to render a uniform end-of-run health summary from whatever
observability parts a simulation carried: a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.profiler.KernelProfiler` and/or a
:class:`~repro.sim.trace.Tracer`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional


def digest(
    metrics: Optional[Any] = None,
    profiler: Optional[Any] = None,
    tracer: Optional[Any] = None,
) -> Dict[str, Any]:
    """Machine-readable report combining the supplied observability parts.

    Parts are duck-typed (``snapshot()`` on registry/profiler, the public
    ``Tracer`` API) so callers can pass any subset, including none.
    """
    out: Dict[str, Any] = {}
    if metrics is not None:
        out["metrics"] = metrics.snapshot()
    if profiler is not None:
        out["profile"] = profiler.snapshot()
    if tracer is not None:
        out["trace"] = {
            "entries": len(tracer),
            "evicted": getattr(tracer, "evicted_count", 0),
            "categories": tracer.category_counts(),
        }
    return out


def digest_for(sim: Any) -> Dict[str, Any]:
    """Machine-readable report for a simulator's attached observability."""
    metrics = getattr(sim, "metrics", None)
    if metrics is not None and not metrics.enabled:
        metrics = None  # collection was off: nothing meaningful to report
    return digest(
        metrics=metrics,
        profiler=getattr(sim, "profiler", None),
        tracer=getattr(sim, "tracer", None),
    )


def render_text(
    metrics: Optional[Any] = None,
    profiler: Optional[Any] = None,
    tracer: Optional[Any] = None,
    *,
    title: str = "observability digest",
    top: int = 20,
) -> str:
    """Human-readable report combining the supplied observability parts."""
    sections = [f"--- {title} ---"]
    if metrics is not None:
        sections.append(metrics.render())
    if profiler is not None:
        sections.append(profiler.render(top=top))
    if tracer is not None:
        sections.append(tracer.summary())
        evicted = getattr(tracer, "evicted_count", 0)
        if evicted:
            sections.append(f"  (ring buffer evicted {evicted} older entries)")
    if len(sections) == 1:
        sections.append("(no observability attached)")
    return "\n".join(sections)


def render_for(sim: Any, *, title: str = "observability digest", top: int = 20) -> str:
    """Human-readable report for a simulator's attached observability."""
    metrics = getattr(sim, "metrics", None)
    if metrics is not None and not metrics.enabled:
        metrics = None  # collection was off: nothing meaningful to report
    return render_text(
        metrics=metrics,
        profiler=getattr(sim, "profiler", None),
        tracer=getattr(sim, "tracer", None),
        title=title,
        top=top,
    )


def write_json(
    path: str,
    metrics: Optional[Any] = None,
    profiler: Optional[Any] = None,
    tracer: Optional[Any] = None,
) -> Dict[str, Any]:
    """Write the machine-readable digest to ``path`` and return it."""
    report = digest(metrics=metrics, profiler=profiler, tracer=tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return report
