"""Observability reports: one text digest, one machine-readable JSON.

Benchmarks (via ``benchmarks/_tables.py``) and the XiL harness use this
module to render a uniform end-of-run health summary from whatever
observability parts a simulation carried: a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.profiler.KernelProfiler` and/or a
:class:`~repro.sim.trace.Tracer`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional


def digest(
    metrics: Optional[Any] = None,
    profiler: Optional[Any] = None,
    tracer: Optional[Any] = None,
) -> Dict[str, Any]:
    """Machine-readable report combining the supplied observability parts.

    Parts are duck-typed (``snapshot()`` on registry/profiler, the public
    ``Tracer`` API) so callers can pass any subset, including none.
    """
    out: Dict[str, Any] = {}
    if metrics is not None:
        out["metrics"] = metrics.snapshot()
    if profiler is not None:
        out["profile"] = profiler.snapshot()
    if tracer is not None:
        out["trace"] = {
            "entries": len(tracer),
            "evicted": getattr(tracer, "evicted_count", 0),
            "categories": tracer.category_counts(),
        }
    return out


def digest_for(sim: Any) -> Dict[str, Any]:
    """Machine-readable report for a simulator's attached observability."""
    metrics = getattr(sim, "metrics", None)
    if metrics is not None and not metrics.enabled:
        metrics = None  # collection was off: nothing meaningful to report
    return digest(
        metrics=metrics,
        profiler=getattr(sim, "profiler", None),
        tracer=getattr(sim, "tracer", None),
    )


def merge_digests(
    digests: Any, *, jobs: int = 0, failed: int = 0, retried: int = 0
) -> Dict[str, Any]:
    """Fold per-job metric digests into one batch-level report.

    Used by :class:`repro.exec.pool.ParallelExecutor` to aggregate the
    :class:`~repro.obs.metrics.MetricsRegistry` snapshots that each worker
    shipped home.  Merge rules per instrument kind:

    * **counter** — values sum (a count of events is additive);
    * **gauge** — the maximum is kept (gauges are point-in-time levels;
      the merged report answers "how high did it get anywhere?");
    * **histogram** — ``count``/``sum`` add, ``min``/``max`` extend and
      the mean is recomputed.  Per-job quantiles cannot be combined
      exactly from snapshots, so the merged histogram omits them rather
      than report a number that looks more precise than it is.

    The ``jobs``/``failed``/``retried`` totals are recorded under an
    ``exec`` section so the batch shape travels with the metrics.
    """
    merged_metrics: Dict[str, Dict[str, Any]] = {}
    sources = 0
    for entry in digests:
        if not entry:
            continue
        metrics = entry.get("metrics") if isinstance(entry, dict) else None
        if not metrics:
            continue
        sources += 1
        for kind, instruments in metrics.items():
            bucket = merged_metrics.setdefault(kind, {})
            for name, snap in instruments.items():
                current = bucket.get(name)
                if current is None:
                    snap = dict(snap)
                    if kind == "histogram":
                        for q in ("p50", "p95", "p99"):
                            snap.pop(q, None)
                    bucket[name] = snap
                    continue
                if kind == "counter":
                    current["value"] += snap["value"]
                elif kind == "gauge":
                    current["value"] = max(current["value"], snap["value"])
                elif kind == "histogram":
                    if snap["count"]:
                        if current["count"]:
                            current["min"] = min(current["min"], snap["min"])
                            current["max"] = max(current["max"], snap["max"])
                        else:
                            current["min"] = snap["min"]
                            current["max"] = snap["max"]
                    count = current["count"] + snap["count"]
                    current["count"] = count
                    current["sum"] += snap["sum"]
                    current["mean"] = current["sum"] / count if count else 0.0
                else:  # unknown kinds pass through first-seen
                    pass
    return {
        "exec": {
            "jobs": jobs,
            "failed": failed,
            "retried": retried,
            "digests_merged": sources,
        },
        "metrics": merged_metrics,
    }


def render_text(
    metrics: Optional[Any] = None,
    profiler: Optional[Any] = None,
    tracer: Optional[Any] = None,
    *,
    title: str = "observability digest",
    top: int = 20,
) -> str:
    """Human-readable report combining the supplied observability parts."""
    sections = [f"--- {title} ---"]
    if metrics is not None:
        sections.append(metrics.render())
    if profiler is not None:
        sections.append(profiler.render(top=top))
    if tracer is not None:
        sections.append(tracer.summary())
        evicted = getattr(tracer, "evicted_count", 0)
        if evicted:
            sections.append(f"  (ring buffer evicted {evicted} older entries)")
    if len(sections) == 1:
        sections.append("(no observability attached)")
    return "\n".join(sections)


def render_for(sim: Any, *, title: str = "observability digest", top: int = 20) -> str:
    """Human-readable report for a simulator's attached observability."""
    metrics = getattr(sim, "metrics", None)
    if metrics is not None and not metrics.enabled:
        metrics = None  # collection was off: nothing meaningful to report
    return render_text(
        metrics=metrics,
        profiler=getattr(sim, "profiler", None),
        tracer=getattr(sim, "tracer", None),
        title=title,
        top=top,
    )


def write_json(
    path: str,
    metrics: Optional[Any] = None,
    profiler: Optional[Any] = None,
    tracer: Optional[Any] = None,
) -> Dict[str, Any]:
    """Write the machine-readable digest to ``path`` and return it."""
    report = digest(metrics=metrics, profiler=profiler, tracer=tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return report
