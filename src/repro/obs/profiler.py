"""Wall-clock profiling of the simulation kernel.

A :class:`KernelProfiler` attached to a
:class:`~repro.sim.kernel.Simulator` times every event callback the
kernel dispatches and attributes the cost to its owner:

* bound methods are attributed to the owning object's class and, where
  available, its ``name`` attribute — so ``Process._step``,
  ``Core._complete`` and ``Endpoint._on_frame`` costs show up per
  process / per core / per endpoint;
* plain functions are attributed by qualified name.

Inside :meth:`Process._step <repro.sim.kernel.Process._step>` a second
hook times just the generator advance, so pure user code ("generator"
rows) can be separated from kernel dispatch overhead.

When no profiler is attached the kernel pays a single ``is None`` test
per event.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


class ProfileRecord:
    """Accumulated cost of one attribution key."""

    __slots__ = ("kind", "name", "calls", "total_s", "max_s")

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<ProfileRecord {self.kind}:{self.name} calls={self.calls} "
            f"total={self.total_s:.6f}s>"
        )


def _attribution_key(callback: Callable[..., Any]) -> Tuple[str, str]:
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        kind = type(owner).__name__
        name = getattr(owner, "name", "") or kind
        return kind, str(name)
    name = getattr(callback, "__qualname__", None) or repr(callback)
    return "function", name


class KernelProfiler:
    """Collects per-callback / per-process / per-category wall-clock cost."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, str], ProfileRecord] = {}
        self.events = 0

    # -- accounting (called from the kernel hot path) ---------------------

    def account(self, callback: Callable[..., Any], elapsed: float) -> None:
        """Attribute ``elapsed`` seconds to the owner of ``callback``."""
        self.events += 1
        key = _attribution_key(callback)
        record = self._records.get(key)
        if record is None:
            record = ProfileRecord(*key)
            self._records[key] = record
        record.add(elapsed)

    def account_generator(self, process_name: str, elapsed: float) -> None:
        """Attribute time spent inside a process generator body."""
        key = ("generator", process_name)
        record = self._records.get(key)
        if record is None:
            record = ProfileRecord(*key)
            self._records[key] = record
        record.add(elapsed)

    # -- inspection --------------------------------------------------------

    def records(self) -> List[ProfileRecord]:
        """All records, most expensive first."""
        return sorted(
            self._records.values(), key=lambda r: r.total_s, reverse=True
        )

    def record(self, kind: str, name: str) -> ProfileRecord:
        return self._records[(kind, name)]

    @property
    def total_s(self) -> float:
        """Total attributed kernel dispatch time (generator rows excluded,
        since they are a subset of their process's dispatch time)."""
        return sum(
            r.total_s for r in self._records.values() if r.kind != "generator"
        )

    def by_kind(self) -> Dict[str, float]:
        """Total seconds per attribution kind (category)."""
        out: Dict[str, float] = {}
        for record in self._records.values():
            out[record.kind] = out.get(record.kind, 0.0) + record.total_s
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable profile."""
        return {
            "events": self.events,
            "total_s": self.total_s,
            "by_kind": self.by_kind(),
            "records": [
                {
                    "kind": r.kind,
                    "name": r.name,
                    "calls": r.calls,
                    "total_s": r.total_s,
                    "mean_s": r.mean_s,
                    "max_s": r.max_s,
                }
                for r in self.records()
            ],
        }

    def render(self, top: int = 20) -> str:
        """Human-readable table of the ``top`` most expensive rows."""
        records = self.records()
        if not records:
            return "profile: no events recorded"
        lines = [
            f"profile: {self.events} events, {self.total_s * 1e3:.3f} ms attributed",
            f"{'kind':<12} {'name':<28} {'calls':>8} {'total ms':>10} "
            f"{'mean us':>10} {'max us':>10}",
        ]
        for r in records[:top]:
            lines.append(
                f"{r.kind:<12} {r.name:<28} {r.calls:>8} "
                f"{r.total_s * 1e3:>10.3f} {r.mean_s * 1e6:>10.2f} "
                f"{r.max_s * 1e6:>10.2f}"
            )
        if len(records) > top:
            lines.append(f"... {len(records) - top} more rows")
        return "\n".join(lines)

    def clear(self) -> None:
        self._records.clear()
        self.events = 0
