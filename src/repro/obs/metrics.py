"""Counters, gauges and streaming histograms.

The registry is the platform-level telemetry substrate demanded by the
paper's runtime-monitoring story (Section 3.4): every layer of the stack
publishes its health through named instruments instead of ad-hoc state.

Design rules:

* **Instruments are cached handles.**  ``registry.counter("net.frames",
  bus="can0")`` is called once at construction time; the hot path only
  calls ``inc()`` / ``observe()`` on the returned object.
* **Disabling is near-free.**  Every instrument carries its own
  ``_enabled`` flag (kept in sync by the registry), so a disabled
  ``inc()`` is a single attribute test and allocates nothing.
* **Histograms are streaming.**  Quantiles (p50/p95/p99) come from
  log-spaced buckets with a bounded relative error — no per-sample
  storage, so fleet-scale campaigns cannot grow memory without limit.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Label set normalised to a hashable, order-independent key component.
LabelKey = Tuple[Tuple[str, str], ...]


def accumulate_exact(partials: List[float], value: float) -> None:
    """Fold ``value`` into a Shewchuk partials list, without rounding error.

    ``partials`` holds a set of non-overlapping floats whose exact
    (real-number) sum is the exact sum of every value accumulated so far
    — the same error-free transformation :func:`math.fsum` uses
    internally.  Because each step is exact, the represented total is
    independent of accumulation order *and grouping*: folding a million
    observations one by one, or folding per-shard partial sums shard by
    shard, represents the identical real number, and
    :func:`exact_total` rounds it to the identical float.  That is what
    makes sharded metric aggregation byte-identical to an unsharded run.

    The list stays tiny in practice (one to three partials for
    same-magnitude observations), so the cost over ``+=`` is a short
    loop, not a data structure.
    """
    i = 0
    for y in partials:
        if abs(value) < abs(y):
            value, y = y, value
        high = value + y
        low = y - (high - value)
        if low:
            partials[i] = low
            i += 1
        value = high
    del partials[i:]
    partials.append(value)


def exact_total(partials: List[float]) -> float:
    """Correctly rounded float value of a partials list."""
    return math.fsum(partials)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Instrument:
    """Base of all metric instruments."""

    kind = "instrument"
    __slots__ = ("name", "labels", "_enabled")

    def __init__(self, name: str, labels: LabelKey, enabled: bool) -> None:
        self.name = name
        self.labels = labels
        self._enabled = enabled

    @property
    def full_name(self) -> str:
        return _format_name(self.name, self.labels)

    def snapshot(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.full_name}>"


class Counter(Instrument):
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelKey, enabled: bool) -> None:
        super().__init__(name, labels, enabled)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge(Instrument):
    """A value that can go up and down (queue depth, utilisation, ...)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelKey, enabled: bool) -> None:
        super().__init__(name, labels, enabled)
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._enabled:
            return
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram(Instrument):
    """Streaming histogram with log-spaced buckets.

    ``observe(v)`` maps positive values onto bucket ``ceil(log_g(v))``
    where ``g`` is the per-bucket growth factor, so quantile estimates
    carry a relative error of at most ``growth - 1`` (10% by default)
    while memory stays proportional to the dynamic range, not the sample
    count.  Non-positive values land in a dedicated zero bucket.
    """

    kind = "histogram"
    __slots__ = ("count", "min", "max", "growth", "_log_growth",
                 "_buckets", "_zero_count", "_partials")

    def __init__(
        self, name: str, labels: LabelKey, enabled: bool, growth: float = 1.1
    ) -> None:
        super().__init__(name, labels, enabled)
        if growth <= 1.0:
            raise ValueError(f"histogram growth must exceed 1.0, got {growth}")
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        # the running sum is kept exactly (Shewchuk partials), so merging
        # histograms is error-free and grouping-independent: any shard
        # split of the observation stream reports the same total
        self._partials: List[float] = []

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        self.count += 1
        accumulate_exact(self._partials, value)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def sum(self) -> float:
        """Correctly rounded sum of every observation (exact under merge)."""
        return exact_total(self._partials)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one, exactly.

        Commutative and associative: ``A.merge(B)`` equals ``B.merge(A)``
        field for field, and merging per-shard histograms reproduces the
        unsharded histogram byte for byte — counts and buckets are
        integers, min/max are order-free, and the sum is accumulated
        without rounding error.  Growth factors must match, otherwise the
        bucket indices describe different geometries.
        """
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with different growth factors "
                f"({self.growth} vs {other.growth})"
            )
        if other.count == 0:
            return
        self.count += other.count
        for partial in other._partials:
            accumulate_exact(self._partials, partial)
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self._zero_count += other._zero_count
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = float(self._zero_count)
        if seen >= target:
            return max(self.min, 0.0) if self.min is not math.inf else 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                # upper edge of the bucket, clamped to the observed range
                return min(self.growth ** index, self.max)
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Creates and owns instruments, keyed by ``(name, labels)``.

    Asking twice for the same instrument returns the same object, so
    layers that label by a shared dimension (e.g. two RPC message types
    mapping to the ``message`` paradigm) transparently aggregate.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._instruments: Dict[Tuple[str, str, LabelKey], Instrument] = {}

    # -- lifecycle -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Turn collection on for every existing and future instrument."""
        self._enabled = True
        for instrument in self._instruments.values():
            instrument._enabled = True

    def disable(self) -> None:
        """Stop collection; cached handles become near-free no-ops."""
        self._enabled = False
        for instrument in self._instruments.values():
            instrument._enabled = False

    # -- instrument factories -------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", Gauge, name, labels)

    def histogram(
        self, name: str, *, growth: float = 1.1, **labels: Any
    ) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, key[2], self._enabled, growth=growth)
            self._instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def _get_or_create(self, kind, cls, name: str, labels: Dict[str, Any]):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[2], self._enabled)
            self._instruments[key] = instrument
        return instrument

    # -- merging ---------------------------------------------------------

    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one (sequential).

        Counters add and histograms merge exactly (see
        :meth:`Histogram.merge`); gauges adopt the other registry's
        latest value — the *absorbed* registry is treated as the newer
        state, which is what forked simulation jobs want when folding a
        restored world's registry into the job context registry.  For an
        order-independent fold (shard aggregation), use :meth:`merge`.
        """
        self._combine(other, gauge_rule="adopt")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, commutatively.

        The shard-aggregation merge: counters add, histograms merge
        exactly (integer counts, order-free min/max, error-free sums —
        :meth:`Histogram.merge`), and gauges keep the **maximum** (a
        merged report answers "how high did it get anywhere?", the same
        rule :func:`repro.obs.report.merge_digests` applies).  Merging
        shard A then B therefore equals B then A, and equals the registry
        an unsharded run would have produced, snapshot-byte for
        snapshot-byte.
        """
        self._combine(other, gauge_rule="max")

    def _combine(self, other: "MetricsRegistry", *, gauge_rule: str) -> None:
        for (kind, name, labels), theirs in other._instruments.items():
            if kind == "counter":
                mine = self._get_or_create(kind, Counter, name, dict(labels))
                mine.value += theirs.value
            elif kind == "gauge":
                # A gauge this registry never set must adopt the incoming
                # value outright: folding into the default 0.0 via max()
                # would invent a phantom zero level (wrong whenever every
                # real observation was negative).
                known = (kind, name, labels) in self._instruments
                mine = self._get_or_create(kind, Gauge, name, dict(labels))
                if gauge_rule == "adopt" or not known:
                    mine.value = theirs.value
                else:
                    mine.value = max(mine.value, theirs.value)
            else:
                mine = self.histogram(
                    name, growth=theirs.growth, **dict(labels)
                )
                mine.merge(theirs)

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def instruments(self, kind: Optional[str] = None) -> List[Instrument]:
        """All instruments, optionally filtered by kind, sorted by name."""
        out = [
            i for i in self._instruments.values()
            if kind is None or i.kind == kind
        ]
        out.sort(key=lambda i: i.full_name)
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Machine-readable state: ``{kind: {full_name: values}}``."""
        out: Dict[str, Dict[str, Any]] = {}
        for instrument in self.instruments():
            out.setdefault(instrument.kind, {})[instrument.full_name] = (
                instrument.snapshot()
            )
        return out

    def render(self) -> str:
        """Human-readable digest, one instrument per line."""
        lines = []
        for counter in self.instruments("counter"):
            lines.append(f"counter   {counter.full_name} = {counter.value:g}")
        for gauge in self.instruments("gauge"):
            lines.append(f"gauge     {gauge.full_name} = {gauge.value:g}")
        for hist in self.instruments("histogram"):
            snap = hist.snapshot()
            lines.append(
                f"histogram {hist.full_name}: n={snap['count']} "
                f"mean={snap['mean']:.6g} p50={snap['p50']:.6g} "
                f"p95={snap['p95']:.6g} p99={snap['p99']:.6g} "
                f"max={snap['max']:.6g}"
            )
        return "\n".join(lines) if lines else "metrics: empty"
