"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` on environments without the ``wheel``
package (offline editable installs).
"""

from setuptools import setup

setup()
